//===- PlanView.h - Read access to ExecPlan internals -----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between the static analysis framework and the compiled
/// plan representation. ExecPlan keeps its instruction encoding private
/// (only the builder, the optimizer and the executors may touch it);
/// PlanView is the one friend the analyses go through. It re-exports the
/// internal types (Inst, Op, the side-table plans) and exposes const
/// accessors over the program, so PlanVerifier / ProtocolChecker stay
/// strictly read-only, plus an explicit mutation escape hatch that the
/// mutation-based negative tests (tests/PlanVerifyTest.cpp) use to
/// corrupt known-good plans.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_ANALYSIS_PLANVIEW_H
#define AXI4MLIR_ANALYSIS_PLANVIEW_H

#include "exec/ExecPlan.h"

namespace axi4mlir {
namespace analysis {

/// A non-owning, read-only view of one compiled ExecPlan.
class PlanView {
public:
  using Inst = exec::ExecPlan::Inst;
  using Op = exec::ExecPlan::Op;
  using BinKind = exec::ExecPlan::BinKind;
  using AllocPlan = exec::ExecPlan::AllocPlan;
  using SubViewPlan = exec::ExecPlan::SubViewPlan;
  using GenericPlan = exec::ExecPlan::GenericPlan;
  static constexpr uint8_t BinFloatResult = exec::ExecPlan::BinFloatResult;

  explicit PlanView(const exec::ExecPlan &Plan) : Plan(&Plan) {}

  const std::vector<Inst> &program() const { return Plan->Program; }
  const std::vector<int32_t> &slotPool() const { return Plan->SlotPool; }
  const std::vector<AllocPlan> &allocs() const { return Plan->Allocs; }
  const std::vector<SubViewPlan> &subViews() const { return Plan->SubViews; }
  const std::vector<GenericPlan> &generics() const { return Plan->Generics; }
  const std::vector<accel::DmaInitConfig> &dmaConfigs() const {
    return Plan->DmaConfigs;
  }
  unsigned numSlots() const { return Plan->NumSlots; }
  unsigned numArgs() const { return Plan->NumArgs; }
  const std::string &funcName() const { return Plan->FuncName; }

  /// Stable per-instruction mnemonic used in diagnostics ("loop",
  /// "copy_to_dma", ...), matching ExecPlan::print's spelling.
  static const char *opName(Op Code);

  /// Mutation access for the negative tests: corrupting a known-good plan
  /// and asserting the verifier's diagnostic is the contract that keeps
  /// every check honest. Nothing in src/ calls these.
  static std::vector<Inst> &mutableProgram(exec::ExecPlan &Plan) {
    return Plan.Program;
  }
  static std::vector<accel::DmaInitConfig> &
  mutableDmaConfigs(exec::ExecPlan &Plan) {
    return Plan.DmaConfigs;
  }

private:
  const exec::ExecPlan *Plan;
};

} // namespace analysis
} // namespace axi4mlir

#endif // AXI4MLIR_ANALYSIS_PLANVIEW_H
