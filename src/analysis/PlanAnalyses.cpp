//===- PlanAnalyses.cpp - Shared ExecPlan analyses ------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "analysis/PlanAnalyses.h"

#include <algorithm>

using namespace axi4mlir;
using namespace axi4mlir::analysis;

using Inst = PlanView::Inst;
using Op = PlanView::Op;
using BinKind = PlanView::BinKind;

const char *PlanView::opName(Op Code) {
  switch (Code) {
  case Op::ConstInt:
    return "const";
  case Op::ConstFloat:
    return "constf";
  case Op::Binary:
    return "binary";
  case Op::IndexCast:
    return "index_cast";
  case Op::LoopBegin:
    return "loop";
  case Op::LoopEnd:
    return "end";
  case Op::Alloc:
    return "alloc";
  case Op::Dealloc:
    return "dealloc";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::Copy:
    return "copy";
  case Op::SubView:
    return "subview";
  case Op::Generic:
    return "generic";
  case Op::AccelDmaInit:
    return "accel.dma_init";
  case Op::AccelSendLiteral:
    return "accel.send_literal";
  case Op::AccelSend:
    return "accel.send";
  case Op::AccelSendDim:
    return "accel.send_dim";
  case Op::AccelSendIdx:
    return "accel.send_idx";
  case Op::AccelRecv:
    return "accel.recv";
  case Op::CallDmaInit:
    return "dma_init";
  case Op::CallCopyToDma:
    return "copy_to_dma";
  case Op::CallCopyLiteralToDma:
    return "copy_literal_to_dma";
  case Op::CallStartSend:
    return "send";
  case Op::CallWaitSend:
    return "wait_send";
  case Op::CallStartRecv:
    return "recv";
  case Op::CallWaitRecv:
    return "wait_recv";
  case Op::CallCopyFromDma:
    return "copy_from_dma";
  case Op::CallSendFused:
    return "send_fused";
  case Op::CallRecvFused:
    return "recv_fused";
  }
  return "<invalid>";
}

bool analysis::evalConstDst(const Inst &I, const SlotFacts &Facts,
                            int64_t &Out) {
  switch (I.Code) {
  case Op::ConstInt:
    Out = I.Imm;
    return true;
  case Op::IndexCast:
    if (!Facts.isConst(I.A))
      return false;
    Out = Facts.Value[I.A];
    return true;
  case Op::Binary: {
    if ((I.Sub & PlanView::BinFloatResult) || !Facts.isConst(I.A) ||
        !Facts.isConst(I.B))
      return false;
    double LHS = static_cast<double>(Facts.Value[I.A]);
    double RHS = static_cast<double>(Facts.Value[I.B]);
    double R = 0;
    switch (static_cast<BinKind>(I.Sub & 0x7)) {
    case BinKind::Add:
      R = LHS + RHS;
      break;
    case BinKind::Mul:
      R = LHS * RHS;
      break;
    case BinKind::Sub:
      R = LHS - RHS;
      break;
    case BinKind::Div:
      if (RHS == 0)
        return false;
      R = LHS / RHS;
      break;
    case BinKind::Max:
      R = LHS > RHS ? LHS : RHS;
      break;
    }
    Out = static_cast<int64_t>(R);
    return true;
  }
  case Op::CallCopyLiteralToDma:
    // Result is the end offset: offset + one staged word.
    if (!Facts.isConst(I.B))
      return false;
    Out = Facts.Value[I.B] + 1;
    return true;
  case Op::CallCopyToDma:
    if (!Facts.isConst(I.B) || I.A < 0 || !Facts.SizeKnown[I.A])
      return false;
    Out = Facts.Value[I.B] + Facts.Count[I.A];
    return true;
  default:
    return false;
  }
}

int64_t analysis::constTripCount(const Inst &LoopBegin,
                                 const SlotFacts &Facts) {
  if (!Facts.isConst(LoopBegin.A) || !Facts.isConst(LoopBegin.B) ||
      !Facts.isConst(LoopBegin.C))
    return -1;
  int64_t Lb = Facts.Value[LoopBegin.A], Ub = Facts.Value[LoopBegin.B],
          Step = Facts.Value[LoopBegin.C];
  if (Step <= 0)
    return -1;
  if (Lb >= Ub)
    return 0;
  return (Ub - Lb + Step - 1) / Step;
}

bool analysis::inputWriteRange(const Inst &I, const SlotFacts &Facts,
                               WordRange &R) {
  if (I.Code == Op::CallCopyLiteralToDma) {
    if (!Facts.isConst(I.B))
      return false;
    R = {Facts.Value[I.B], Facts.Value[I.B] + 1};
    return true;
  }
  if (I.Code == Op::CallCopyToDma) {
    if (!Facts.isConst(I.B) || I.A < 0 || !Facts.SizeKnown[I.A])
      return false;
    R = {Facts.Value[I.B], Facts.Value[I.B] + Facts.Count[I.A]};
    return true;
  }
  return false;
}

bool analysis::sendRange(const Inst &I, const SlotFacts &Facts,
                         WordRange &R) {
  if (!Facts.isConst(I.A) || !Facts.isConst(I.B))
    return false;
  R = {Facts.Value[I.B], Facts.Value[I.A]}; // B = offset, A = end offset
  return true;
}

int64_t analysis::inputRegionWords(const PlanView &Plan) {
  if (Plan.dmaConfigs().empty())
    return 0;
  int64_t Words = -1;
  for (const accel::DmaInitConfig &C : Plan.dmaConfigs()) {
    int64_t W = C.InputBufferSize / 4;
    Words = Words < 0 ? W : std::min(Words, W);
  }
  return std::max<int64_t>(Words, 0);
}

int64_t analysis::outputRegionWords(const PlanView &Plan) {
  if (Plan.dmaConfigs().empty())
    return 0;
  int64_t Words = -1;
  for (const accel::DmaInitConfig &C : Plan.dmaConfigs()) {
    int64_t W = C.OutputBufferSize / 4;
    Words = Words < 0 ? W : std::min(Words, W);
  }
  return std::max<int64_t>(Words, 0);
}

int64_t analysis::staticElementCount(const PlanView &Plan, const Inst &I) {
  int64_t Count = 1;
  if (I.Code == Op::SubView) {
    if (I.Aux < 0 ||
        static_cast<size_t>(I.Aux) >= Plan.subViews().size())
      return -1;
    for (int64_t S : Plan.subViews()[I.Aux].StaticSizes)
      Count *= S;
    return Count;
  }
  if (I.Code == Op::Alloc) {
    if (I.Aux < 0 || static_cast<size_t>(I.Aux) >= Plan.allocs().size())
      return -1;
    for (int64_t S : Plan.allocs()[I.Aux].Shape)
      Count *= S;
    return Count;
  }
  return -1;
}
