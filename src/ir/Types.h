//===- Types.h - IR type system ---------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR type system: scalar types (index, iN, fN) and MemRefType — the
/// N-dimensional strided memory reference central to the paper (Sec. II-A1,
/// Fig. 3 shows its runtime struct). MemRefType carries shape, element type,
/// optional explicit strides and a static-or-dynamic offset, which is what
/// `memref.subview` produces and what the DMA staging copies consume.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_TYPES_H
#define AXI4MLIR_IR_TYPES_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace axi4mlir {

class MLIRContext;

namespace detail {
struct TypeStorage;
} // namespace detail

/// Value-semantic handle to an immutable type. Compare structurally with
/// operator==; downcast with Type::isa<T>() / cast<T>() / dyn_cast<T>().
class Type {
public:
  enum class Kind {
    None,
    Index,
    I1,
    I8,
    I16,
    I32,
    I64,
    F32,
    F64,
    MemRef,
    Function
  };

  Type() = default;

  static Type getNone(MLIRContext *Context);
  static Type getIndex(MLIRContext *Context);
  static Type getI1(MLIRContext *Context);
  static Type getI8(MLIRContext *Context);
  static Type getI16(MLIRContext *Context);
  static Type getI32(MLIRContext *Context);
  static Type getI64(MLIRContext *Context);
  static Type getF32(MLIRContext *Context);
  static Type getF64(MLIRContext *Context);

  Kind getKind() const;
  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Type &Other) const;
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  bool isIndex() const { return getKind() == Kind::Index; }
  bool isInteger() const {
    Kind K = getKind();
    return K == Kind::I1 || K == Kind::I8 || K == Kind::I16 ||
           K == Kind::I32 || K == Kind::I64;
  }
  bool isFloat() const {
    Kind K = getKind();
    return K == Kind::F32 || K == Kind::F64;
  }
  bool isIntOrIndex() const { return isInteger() || isIndex(); }

  /// Storage width of a scalar value of this type, in bytes. Index is
  /// modeled as 4 bytes (32-bit ARM host, as on the PYNQ-Z2).
  unsigned getByteWidth() const;

  /// MLIR-style casting interface for type value classes.
  template <typename T>
  bool isa() const {
    return *this && T::kindof(getKind());
  }
  template <typename T>
  T cast() const {
    assert(isa<T>() && "Type::cast to incompatible kind");
    return T(Impl);
  }
  template <typename T>
  T dyn_cast() const {
    return isa<T>() ? T(Impl) : T();
  }

  void print(std::ostream &OS) const;
  std::string str() const;

protected:
  explicit Type(std::shared_ptr<const detail::TypeStorage> Impl)
      : Impl(std::move(Impl)) {}

  std::shared_ptr<const detail::TypeStorage> Impl;
  friend class MLIRContext;
};

/// Sentinel for a dynamic dimension size / offset, as in MLIR.
inline constexpr int64_t DynamicSize = -9223372036854775807LL;
inline bool isDynamic(int64_t Value) { return Value == DynamicSize; }

/// An N-dimensional strided buffer reference type.
class MemRefType : public Type {
public:
  MemRefType() = default;

  /// Contiguous row-major memref of the given shape.
  static MemRefType get(MLIRContext *Context, std::vector<int64_t> Shape,
                        Type ElementType);
  /// Strided memref, e.g. the result of memref.subview. \p Offset may be
  /// DynamicSize when only known at runtime.
  static MemRefType getStrided(MLIRContext *Context,
                               std::vector<int64_t> Shape, Type ElementType,
                               std::vector<int64_t> Strides, int64_t Offset);

  static bool kindof(Kind K) { return K == Kind::MemRef; }

  unsigned getRank() const;
  const std::vector<int64_t> &getShape() const;
  Type getElementType() const;
  int64_t getDimSize(unsigned Index) const;
  int64_t getNumElements() const;

  /// True if explicit (possibly non-contiguous) strides were attached.
  bool hasExplicitStrides() const;
  /// Strides in elements; computed row-major when not explicit.
  std::vector<int64_t> getStrides() const;
  /// Static offset in elements (DynamicSize if runtime-dependent).
  int64_t getOffset() const;

  /// True if the innermost stride is 1, i.e. rows are contiguous — the
  /// precondition for the memcpy copy-specialization (paper Sec. IV-B).
  bool isInnermostContiguous() const;
  /// True if the whole buffer is contiguous row-major with offset 0.
  bool isContiguousRowMajor() const;

private:
  explicit MemRefType(std::shared_ptr<const detail::TypeStorage> Impl)
      : Type(std::move(Impl)) {}
  friend class Type;
};

/// A function type, used by func.func's `function_type` attribute.
class FunctionType : public Type {
public:
  FunctionType() = default;

  static FunctionType get(MLIRContext *Context, std::vector<Type> Inputs,
                          std::vector<Type> Results);
  static bool kindof(Kind K) { return K == Kind::Function; }

  const std::vector<Type> &getInputs() const;
  const std::vector<Type> &getResults() const;

private:
  explicit FunctionType(std::shared_ptr<const detail::TypeStorage> Impl)
      : Type(std::move(Impl)) {}
  friend class Type;
};

inline std::ostream &operator<<(std::ostream &OS, const Type &Ty) {
  Ty.print(OS);
  return OS;
}

} // namespace axi4mlir

#endif // AXI4MLIR_IR_TYPES_H
