//===- MLIRContext.h - IR context -------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MLIRContext owns per-context state: the cache of scalar type instances
/// and the operation registry (op definitions + verifiers) that dialects
/// populate via registerAllDialects().
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_MLIRCONTEXT_H
#define AXI4MLIR_IR_MLIRCONTEXT_H

#include "ir/Types.h"

#include <memory>
#include <vector>

namespace axi4mlir {

class OpRegistry;

/// The root object tying together type caching and op registration. Create
/// one per compilation; pass it to builders and passes.
class MLIRContext {
public:
  MLIRContext();
  ~MLIRContext();
  MLIRContext(const MLIRContext &) = delete;
  MLIRContext &operator=(const MLIRContext &) = delete;

  /// Returns the per-context singleton instance of a scalar type kind.
  Type getCachedScalarType(Type::Kind K);

  /// The operation registry used by the verifier and the builders.
  OpRegistry &getOpRegistry() { return *Registry; }
  const OpRegistry &getOpRegistry() const { return *Registry; }

private:
  std::vector<Type> ScalarTypes;
  std::unique_ptr<OpRegistry> Registry;
};

} // namespace axi4mlir

#endif // AXI4MLIR_IR_MLIRCONTEXT_H
