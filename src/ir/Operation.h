//===- Operation.h - Operations, blocks and regions -------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutually recursive core IR structures, mirroring MLIR:
///   * Operation — a generic instruction with operands, results, attributes
///     and regions ("linalg.generic", "scf.for", "accel.send", ...).
///   * Block — an ordered list of operations plus block arguments.
///   * Region — an ordered list of blocks owned by an operation.
///
/// Ops are generic (no per-op subclasses); dialects provide lightweight
/// OpView wrappers (see dialects/) with typed accessors, following MLIR's
/// Op<...> pattern.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_OPERATION_H
#define AXI4MLIR_IR_OPERATION_H

#include "ir/Attributes.h"
#include "ir/Value.h"

#include <functional>
#include <list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace axi4mlir {

class Block;
class MLIRContext;
class Operation;
class Region;

/// A region: a list of blocks owned by an operation.
class Region {
public:
  explicit Region(Operation *Parent) : Parent(Parent) {}
  Region(const Region &) = delete;

  Operation *getParentOp() const { return Parent; }

  bool empty() const { return Blocks.empty(); }
  Block &front() { return *Blocks.front(); }
  const Block &front() const { return *Blocks.front(); }
  size_t getNumBlocks() const { return Blocks.size(); }
  Block &getBlock(size_t Index) { return *Blocks[Index]; }

  /// Appends a fresh empty block and returns it.
  Block &emplaceBlock();

  std::vector<std::unique_ptr<Block>> &getBlocks() { return Blocks; }

private:
  Operation *Parent;
  std::vector<std::unique_ptr<Block>> Blocks;
};

/// A basic block: arguments plus an ordered operation list. Owns its
/// operations.
class Block {
public:
  using OpListType = std::list<Operation *>;

  explicit Block(Region *Parent) : Parent(Parent) {}
  Block(const Block &) = delete;
  ~Block();

  Region *getParent() const { return Parent; }
  Operation *getParentOp() const;

  //===--------------------------------------------------------------------===//
  // Arguments
  //===--------------------------------------------------------------------===//

  Value addArgument(Type Ty);
  Value getArgument(unsigned Index) const;
  unsigned getNumArguments() const { return Arguments.size(); }

  //===--------------------------------------------------------------------===//
  // Operation list
  //===--------------------------------------------------------------------===//

  OpListType &getOperations() { return Operations; }
  const OpListType &getOperations() const { return Operations; }
  bool empty() const { return Operations.empty(); }
  Operation *front() { return Operations.front(); }
  Operation *back() { return Operations.back(); }

  /// Appends \p Op (taking ownership) and records its position.
  void push_back(Operation *Op);
  /// Inserts \p Op before \p Position (taking ownership).
  OpListType::iterator insert(OpListType::iterator Position, Operation *Op);
  /// Unlinks \p Op without destroying it. Caller takes ownership.
  void remove(Operation *Op);

  /// The last operation, expected to be a terminator.
  Operation *getTerminator() { return Operations.back(); }

private:
  Region *Parent;
  std::vector<std::unique_ptr<detail::ValueImpl>> Arguments;
  OpListType Operations;
};

/// A generic operation. Create with Operation::create or (preferably) via
/// OpBuilder; destroy by erasing from the parent block or via destroy().
class Operation {
public:
  /// Creates a detached operation.
  static Operation *create(MLIRContext *Context, std::string Name,
                           std::vector<Value> Operands,
                           std::vector<Type> ResultTypes,
                           std::vector<NamedAttribute> Attributes = {},
                           unsigned NumRegions = 0);

  /// Destroys this (detached) operation and everything it owns.
  void destroy();

  MLIRContext *getContext() const { return Context; }
  const std::string &getName() const { return Name; }

  //===--------------------------------------------------------------------===//
  // Operands and results
  //===--------------------------------------------------------------------===//

  unsigned getNumOperands() const { return Operands.size(); }
  Value getOperand(unsigned Index) const { return Operands[Index]; }
  void setOperand(unsigned Index, Value V) { Operands[Index] = V; }
  std::vector<Value> &getOperands() { return Operands; }
  const std::vector<Value> &getOperands() const { return Operands; }

  unsigned getNumResults() const { return Results.size(); }
  Value getResult(unsigned Index) const {
    return Value(Results[Index].get());
  }

  //===--------------------------------------------------------------------===//
  // Attributes
  //===--------------------------------------------------------------------===//

  Attribute getAttr(const std::string &AttrName) const;
  bool hasAttr(const std::string &AttrName) const {
    return static_cast<bool>(getAttr(AttrName));
  }
  void setAttr(const std::string &AttrName, Attribute Attr);
  void removeAttr(const std::string &AttrName);
  const std::vector<NamedAttribute> &getAttrs() const { return Attributes; }

  /// Typed attribute convenience accessors (assert on kind mismatch).
  int64_t getIntAttr(const std::string &AttrName) const {
    return getAttr(AttrName).getIntValue();
  }
  std::string getStringAttr(const std::string &AttrName) const {
    return getAttr(AttrName).getStringValue();
  }
  AffineMap getAffineMapAttr(const std::string &AttrName) const {
    return getAttr(AttrName).getAffineMapValue();
  }

  //===--------------------------------------------------------------------===//
  // Regions and position
  //===--------------------------------------------------------------------===//

  unsigned getNumRegions() const { return Regions.size(); }
  Region &getRegion(unsigned Index) { return *Regions[Index]; }

  Block *getBlock() const { return ParentBlock; }
  /// The operation owning the block containing this op, or nullptr.
  Operation *getParentOp() const;

  /// Removes this op from its block and destroys it.
  void erase();
  /// Unlinks this op from its block (ownership moves to the caller).
  void removeFromParent();
  /// Moves this op immediately before \p Other (same or different block).
  void moveBefore(Operation *Other);

  //===--------------------------------------------------------------------===//
  // Walking and use replacement
  //===--------------------------------------------------------------------===//

  /// Pre-order walk over this op and all nested ops.
  void walk(const std::function<void(Operation *)> &Callback);

  /// Replaces every use of \p From with \p To inside this op's regions
  /// (including nested regions) and in this op's own operands.
  void replaceUsesOfWith(Value From, Value To);

  //===--------------------------------------------------------------------===//
  // Printing
  //===--------------------------------------------------------------------===//

  void print(std::ostream &OS) const;
  std::string str() const;
  void dump() const;

private:
  Operation(MLIRContext *Context, std::string Name)
      : Context(Context), Name(std::move(Name)) {}
  ~Operation() = default;

  MLIRContext *Context;
  std::string Name;
  std::vector<Value> Operands;
  std::vector<std::unique_ptr<detail::ValueImpl>> Results;
  std::vector<NamedAttribute> Attributes;
  std::vector<std::unique_ptr<Region>> Regions;

  Block *ParentBlock = nullptr;
  Block::OpListType::iterator PositionInBlock;

  friend class Block;
};

/// RAII owner for a detached top-level operation (e.g. a func.func built by
/// a test or a pipeline). Destroys the op when it goes out of scope.
class OwningOpRef {
public:
  OwningOpRef() = default;
  explicit OwningOpRef(Operation *Op) : Op(Op) {}
  OwningOpRef(OwningOpRef &&Other) noexcept : Op(Other.Op) {
    Other.Op = nullptr;
  }
  OwningOpRef &operator=(OwningOpRef &&Other) noexcept {
    if (this != &Other) {
      reset();
      Op = Other.Op;
      Other.Op = nullptr;
    }
    return *this;
  }
  OwningOpRef(const OwningOpRef &) = delete;
  OwningOpRef &operator=(const OwningOpRef &) = delete;
  ~OwningOpRef() { reset(); }

  Operation *get() const { return Op; }
  Operation *operator->() const { return Op; }
  Operation &operator*() const { return *Op; }
  explicit operator bool() const { return Op != nullptr; }

  Operation *release() {
    Operation *Result = Op;
    Op = nullptr;
    return Result;
  }
  void reset() {
    if (Op)
      Op->destroy();
    Op = nullptr;
  }

private:
  Operation *Op = nullptr;
};

inline std::ostream &operator<<(std::ostream &OS, const Operation &Op) {
  Op.print(OS);
  return OS;
}

} // namespace axi4mlir

#endif // AXI4MLIR_IR_OPERATION_H
