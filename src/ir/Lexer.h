//===- Lexer.h - Character cursor for the textual IR parser -----*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small scannerless lexer for the generic textual IR form: a forward-only
/// character cursor with line/column tracking, `//` comment skipping, and
/// on-demand lexing of the token shapes the grammar needs (identifiers,
/// integer/float literals, escaped string literals). The IR grammar embeds
/// sub-languages whose tokens would fight a conventional tokenizer (memref
/// shapes like `16x16xi32` glue integers and identifiers together), so the
/// parser pulls exactly the token it expects at each point instead.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_LEXER_H
#define AXI4MLIR_IR_LEXER_H

#include "support/LogicalResult.h"

#include <cstdint>
#include <string>

namespace axi4mlir {

/// A 1-based source position, tracked by the lexer for diagnostics.
struct SourceLocation {
  unsigned Line = 1;
  unsigned Column = 1;
};

/// An integer or floating-point literal. The printer emits floats with a
/// mandatory '.' or exponent, so the two are syntactically distinct.
struct NumberLiteral {
  bool IsFloat = false;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  /// The literal exactly as spelled, for diagnostics.
  std::string Spelling;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Source(Source) {}

  /// Location of the next significant (non-space, non-comment) character.
  SourceLocation getLoc();

  /// True when only whitespace/comments remain.
  bool atEnd();

  /// The next significant character, or '\0' at end of input.
  char peek();
  /// The character immediately after the next significant one ('\0' at end).
  char peekSecond();

  /// Consumes \p C if it is the next significant character.
  bool consumeIf(char C);
  /// Consumes the exact punctuation sequence \p Punct (e.g. "->"); the
  /// sequence itself must be contiguous in the input.
  bool consumeIf(const char *Punct);
  /// Consumes \p Keyword only when followed by a non-identifier character.
  bool consumeKeyword(const char *Keyword);

  /// Raw single-character consume with no whitespace skipping; used between
  /// the glued tokens of a memref shape (`16x16xi32`).
  bool consumeRawIf(char C);
  /// True if the immediately-next raw character is a decimal digit.
  bool rawDigitAhead() const {
    return Pos < Source.size() && Source[Pos] >= '0' && Source[Pos] <= '9';
  }

  /// Lexes `[A-Za-z_][A-Za-z0-9_.$]*` (op names embed dots). Returns an
  /// empty string when no identifier starts here.
  std::string lexIdentifier();

  /// Lexes the raw suffix of an SSA (`%0`, `%arg1`) or block (`^bb`) id:
  /// `[A-Za-z0-9_$.]*` with no whitespace skipping, so the sigil and the
  /// name must be contiguous.
  std::string lexSuffixId();

  /// Lexes a decimal (or, when \p AllowHex, 0x-prefixed) integer with a
  /// strict end-of-token and overflow check.
  FailureOr<int64_t> lexInteger(std::string &Error, bool AllowHex = false);

  /// Lexes a bare run of decimal digits (no sign, no hex, no float) — the
  /// shape-dimension token of `memref<16x16xi32>`.
  FailureOr<int64_t> lexShapeDim(std::string &Error);

  /// Lexes an integer or float literal (floats carry '.' or an exponent;
  /// `inf`/`nan` spellings are handled by the caller).
  FailureOr<NumberLiteral> lexNumber(std::string &Error);

  /// Lexes a double-quoted string literal, decoding the printer's escapes
  /// (\" \\ \n \t \r and \XX hex pairs).
  FailureOr<std::string> lexStringLiteral(std::string &Error);

  /// Save/restore for the handful of single-token backtracks the attribute
  /// grammar needs (e.g. identifier-led values that turn out to be types).
  struct Checkpoint {
    size_t Pos;
    SourceLocation Loc;
  };
  Checkpoint save();
  void restore(Checkpoint C);

  /// Captures the raw text from the current position through the first
  /// occurrence of \p Close (inclusive), advancing past it. Used to hand
  /// `opcode_map<...>` / `opcode_flow<...>` payloads to their dedicated
  /// parsers. Fails when \p Close never occurs.
  FailureOr<std::string> captureThrough(char Close, std::string &Error);

private:
  void skipToSignificant();
  void advance();

  const std::string &Source;
  size_t Pos = 0;
  SourceLocation Loc;
};

} // namespace axi4mlir

#endif // AXI4MLIR_IR_LEXER_H
