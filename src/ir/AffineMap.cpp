//===- AffineMap.cpp - Multi-result affine map implementation -------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/AffineMap.h"

#include "support/STLExtras.h"

#include <cassert>
#include <sstream>

using namespace axi4mlir;

namespace axi4mlir {
namespace detail {
struct AffineMapStorage {
  unsigned NumDims = 0;
  unsigned NumSymbols = 0;
  std::vector<AffineExpr> Results;
};
} // namespace detail
} // namespace axi4mlir

AffineMap AffineMap::get(unsigned NumDims, unsigned NumSymbols,
                         std::vector<AffineExpr> Results) {
  auto Storage = std::make_shared<detail::AffineMapStorage>();
  Storage->NumDims = NumDims;
  Storage->NumSymbols = NumSymbols;
  Storage->Results = std::move(Results);
  return AffineMap(std::move(Storage));
}

AffineMap AffineMap::getMultiDimIdentity(unsigned NumDims) {
  std::vector<AffineExpr> Results;
  Results.reserve(NumDims);
  for (unsigned I = 0; I < NumDims; ++I)
    Results.push_back(AffineExpr::getDim(I));
  return get(NumDims, 0, std::move(Results));
}

AffineMap AffineMap::getPermutation(const std::vector<unsigned> &Permutation) {
  std::vector<AffineExpr> Results;
  Results.reserve(Permutation.size());
  for (unsigned Position : Permutation) {
    assert(Position < Permutation.size() && "invalid permutation entry");
    Results.push_back(AffineExpr::getDim(Position));
  }
  return get(Permutation.size(), 0, std::move(Results));
}

AffineMap AffineMap::getConstant(unsigned NumDims,
                                 const std::vector<int64_t> &Values) {
  std::vector<AffineExpr> Results;
  Results.reserve(Values.size());
  for (int64_t Value : Values)
    Results.push_back(AffineExpr::getConstant(Value));
  return get(NumDims, 0, std::move(Results));
}

AffineMap AffineMap::getSelect(const std::vector<unsigned> &Positions,
                               unsigned NumDims) {
  std::vector<AffineExpr> Results;
  Results.reserve(Positions.size());
  for (unsigned Position : Positions) {
    assert(Position < NumDims && "selected position out of range");
    Results.push_back(AffineExpr::getDim(Position));
  }
  return get(NumDims, 0, std::move(Results));
}

bool AffineMap::operator==(const AffineMap &Other) const {
  if (Impl == Other.Impl)
    return true;
  if (!Impl || !Other.Impl)
    return false;
  if (Impl->NumDims != Other.Impl->NumDims ||
      Impl->NumSymbols != Other.Impl->NumSymbols ||
      Impl->Results.size() != Other.Impl->Results.size())
    return false;
  for (size_t I = 0, E = Impl->Results.size(); I < E; ++I)
    if (Impl->Results[I] != Other.Impl->Results[I])
      return false;
  return true;
}

unsigned AffineMap::getNumDims() const {
  assert(Impl);
  return Impl->NumDims;
}

unsigned AffineMap::getNumSymbols() const {
  assert(Impl);
  return Impl->NumSymbols;
}

unsigned AffineMap::getNumResults() const {
  assert(Impl);
  return Impl->Results.size();
}

AffineExpr AffineMap::getResult(unsigned Index) const {
  assert(Impl && Index < Impl->Results.size());
  return Impl->Results[Index];
}

const std::vector<AffineExpr> &AffineMap::getResults() const {
  assert(Impl);
  return Impl->Results;
}

bool AffineMap::isPermutation() const {
  if (!isProjectedPermutation() || getNumResults() != getNumDims())
    return false;
  std::vector<bool> Seen(getNumDims(), false);
  for (const AffineExpr &Result : Impl->Results) {
    unsigned Position = Result.getPosition();
    if (Seen[Position])
      return false;
    Seen[Position] = true;
  }
  return true;
}

bool AffineMap::isProjectedPermutation() const {
  assert(Impl);
  for (const AffineExpr &Result : Impl->Results)
    if (!Result.isDim())
      return false;
  return true;
}

std::vector<int64_t> AffineMap::eval(const std::vector<int64_t> &Dims,
                                     const std::vector<int64_t> &Symbols) const {
  assert(Impl);
  assert(Dims.size() >= Impl->NumDims && "not enough dimension values");
  std::vector<int64_t> Values;
  Values.reserve(Impl->Results.size());
  for (const AffineExpr &Result : Impl->Results)
    Values.push_back(Result.eval(Dims, Symbols));
  return Values;
}

std::set<unsigned> AffineMap::getResultDimPositions(unsigned Index) const {
  std::set<unsigned> Positions;
  getResult(Index).collectDimPositions(Positions);
  return Positions;
}

std::set<unsigned> AffineMap::getAllDimPositions() const {
  std::set<unsigned> Positions;
  for (const AffineExpr &Result : Impl->Results)
    Result.collectDimPositions(Positions);
  return Positions;
}

void AffineMap::print(std::ostream &OS) const {
  if (!Impl) {
    OS << "<<null map>>";
    return;
  }
  OS << "(";
  for (unsigned I = 0; I < Impl->NumDims; ++I) {
    if (I)
      OS << ", ";
    OS << "d" << I;
  }
  OS << ")";
  if (Impl->NumSymbols > 0) {
    OS << "[";
    for (unsigned I = 0; I < Impl->NumSymbols; ++I) {
      if (I)
        OS << ", ";
      OS << "s" << I;
    }
    OS << "]";
  }
  OS << " -> (";
  interleave(
      Impl->Results, [&](const AffineExpr &Expr) { Expr.print(OS); },
      [&] { OS << ", "; });
  OS << ")";
}

std::string AffineMap::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
