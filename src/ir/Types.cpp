//===- Types.cpp - IR type system implementation --------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Types.h"

#include "ir/MLIRContext.h"
#include "support/STLExtras.h"

#include <sstream>

using namespace axi4mlir;

namespace axi4mlir {
namespace detail {
struct TypeStorage {
  Type::Kind Kind = Type::Kind::None;
  // MemRef payload.
  std::vector<int64_t> Shape;
  Type ElementType;
  bool HasExplicitStrides = false;
  std::vector<int64_t> Strides;
  int64_t Offset = 0;
  // Function payload.
  std::vector<Type> Inputs;
  std::vector<Type> Results;
};
} // namespace detail
} // namespace axi4mlir

static Type makeScalar(MLIRContext *Context, Type::Kind K) {
  return Context->getCachedScalarType(K);
}

Type Type::getNone(MLIRContext *C) { return makeScalar(C, Kind::None); }
Type Type::getIndex(MLIRContext *C) { return makeScalar(C, Kind::Index); }
Type Type::getI1(MLIRContext *C) { return makeScalar(C, Kind::I1); }
Type Type::getI8(MLIRContext *C) { return makeScalar(C, Kind::I8); }
Type Type::getI16(MLIRContext *C) { return makeScalar(C, Kind::I16); }
Type Type::getI32(MLIRContext *C) { return makeScalar(C, Kind::I32); }
Type Type::getI64(MLIRContext *C) { return makeScalar(C, Kind::I64); }
Type Type::getF32(MLIRContext *C) { return makeScalar(C, Kind::F32); }
Type Type::getF64(MLIRContext *C) { return makeScalar(C, Kind::F64); }

Type MLIRContext::getCachedScalarType(Type::Kind K) {
  auto Index = static_cast<size_t>(K);
  if (Index >= ScalarTypes.size())
    ScalarTypes.resize(Index + 1);
  if (!ScalarTypes[Index]) {
    auto Storage = std::make_shared<detail::TypeStorage>();
    Storage->Kind = K;
    ScalarTypes[Index] = Type(std::move(Storage));
  }
  return ScalarTypes[Index];
}

Type::Kind Type::getKind() const {
  assert(Impl && "querying a null Type");
  return Impl->Kind;
}

bool Type::operator==(const Type &Other) const {
  if (Impl == Other.Impl)
    return true;
  if (!Impl || !Other.Impl)
    return false;
  if (Impl->Kind != Other.Impl->Kind)
    return false;
  switch (Impl->Kind) {
  case Kind::MemRef:
    return Impl->Shape == Other.Impl->Shape &&
           Impl->ElementType == Other.Impl->ElementType &&
           Impl->HasExplicitStrides == Other.Impl->HasExplicitStrides &&
           Impl->Strides == Other.Impl->Strides &&
           Impl->Offset == Other.Impl->Offset;
  case Kind::Function:
    return Impl->Inputs == Other.Impl->Inputs &&
           Impl->Results == Other.Impl->Results;
  default:
    return true; // Scalar kinds compare by kind only.
  }
}

unsigned Type::getByteWidth() const {
  switch (getKind()) {
  case Kind::I1:
  case Kind::I8:
    return 1;
  case Kind::I16:
    return 2;
  case Kind::I32:
  case Kind::F32:
  case Kind::Index: // 32-bit ARM host model.
    return 4;
  case Kind::I64:
  case Kind::F64:
    return 8;
  default:
    assert(false && "byte width queried on a non-scalar type");
    return 0;
  }
}

void Type::print(std::ostream &OS) const {
  if (!Impl) {
    OS << "<<null type>>";
    return;
  }
  switch (Impl->Kind) {
  case Kind::None:
    OS << "none";
    return;
  case Kind::Index:
    OS << "index";
    return;
  case Kind::I1:
    OS << "i1";
    return;
  case Kind::I8:
    OS << "i8";
    return;
  case Kind::I16:
    OS << "i16";
    return;
  case Kind::I32:
    OS << "i32";
    return;
  case Kind::I64:
    OS << "i64";
    return;
  case Kind::F32:
    OS << "f32";
    return;
  case Kind::F64:
    OS << "f64";
    return;
  case Kind::MemRef: {
    OS << "memref<";
    for (int64_t Dim : Impl->Shape) {
      if (isDynamic(Dim))
        OS << "?";
      else
        OS << Dim;
      OS << "x";
    }
    Impl->ElementType.print(OS);
    if (Impl->HasExplicitStrides) {
      OS << ", strided<[" << join(Impl->Strides, ", ") << "], offset: ";
      if (isDynamic(Impl->Offset))
        OS << "?";
      else
        OS << Impl->Offset;
      OS << ">";
    }
    OS << ">";
    return;
  }
  case Kind::Function: {
    OS << "(";
    interleave(
        Impl->Inputs, [&](const Type &T) { T.print(OS); },
        [&] { OS << ", "; });
    OS << ") -> (";
    interleave(
        Impl->Results, [&](const Type &T) { T.print(OS); },
        [&] { OS << ", "; });
    OS << ")";
    return;
  }
  }
}

std::string Type::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// MemRefType
//===----------------------------------------------------------------------===//

MemRefType MemRefType::get(MLIRContext *, std::vector<int64_t> Shape,
                           Type ElementType) {
  assert(ElementType && !ElementType.isa<MemRefType>() &&
         "memref of memref is not supported");
  auto Storage = std::make_shared<detail::TypeStorage>();
  Storage->Kind = Kind::MemRef;
  Storage->Shape = std::move(Shape);
  Storage->ElementType = ElementType;
  return MemRefType(std::move(Storage));
}

MemRefType MemRefType::getStrided(MLIRContext *, std::vector<int64_t> Shape,
                                  Type ElementType,
                                  std::vector<int64_t> Strides,
                                  int64_t Offset) {
  assert(Strides.size() == Shape.size() &&
         "stride count must match memref rank");
  auto Storage = std::make_shared<detail::TypeStorage>();
  Storage->Kind = Kind::MemRef;
  Storage->Shape = std::move(Shape);
  Storage->ElementType = ElementType;
  Storage->HasExplicitStrides = true;
  Storage->Strides = std::move(Strides);
  Storage->Offset = Offset;
  return MemRefType(std::move(Storage));
}

unsigned MemRefType::getRank() const { return Impl->Shape.size(); }

const std::vector<int64_t> &MemRefType::getShape() const {
  return Impl->Shape;
}

Type MemRefType::getElementType() const { return Impl->ElementType; }

int64_t MemRefType::getDimSize(unsigned Index) const {
  assert(Index < Impl->Shape.size() && "dim index out of range");
  return Impl->Shape[Index];
}

int64_t MemRefType::getNumElements() const { return product(Impl->Shape); }

bool MemRefType::hasExplicitStrides() const {
  return Impl->HasExplicitStrides;
}

std::vector<int64_t> MemRefType::getStrides() const {
  if (Impl->HasExplicitStrides)
    return Impl->Strides;
  // Row-major contiguous strides.
  std::vector<int64_t> Strides(Impl->Shape.size(), 1);
  for (int I = static_cast<int>(Impl->Shape.size()) - 2; I >= 0; --I)
    Strides[I] = Strides[I + 1] * Impl->Shape[I + 1];
  return Strides;
}

int64_t MemRefType::getOffset() const {
  return Impl->HasExplicitStrides ? Impl->Offset : 0;
}

bool MemRefType::isInnermostContiguous() const {
  if (getRank() == 0)
    return true;
  return getStrides().back() == 1;
}

bool MemRefType::isContiguousRowMajor() const {
  if (!Impl->HasExplicitStrides)
    return true;
  if (Impl->Offset != 0)
    return false;
  std::vector<int64_t> RowMajor(Impl->Shape.size(), 1);
  for (int I = static_cast<int>(Impl->Shape.size()) - 2; I >= 0; --I)
    RowMajor[I] = RowMajor[I + 1] * Impl->Shape[I + 1];
  return Impl->Strides == RowMajor;
}

//===----------------------------------------------------------------------===//
// FunctionType
//===----------------------------------------------------------------------===//

FunctionType FunctionType::get(MLIRContext *, std::vector<Type> Inputs,
                               std::vector<Type> Results) {
  auto Storage = std::make_shared<detail::TypeStorage>();
  Storage->Kind = Kind::Function;
  Storage->Inputs = std::move(Inputs);
  Storage->Results = std::move(Results);
  return FunctionType(std::move(Storage));
}

const std::vector<Type> &FunctionType::getInputs() const {
  return Impl->Inputs;
}

const std::vector<Type> &FunctionType::getResults() const {
  return Impl->Results;
}
