//===- Attributes.cpp - IR attribute implementation -----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Attributes.h"

#include "support/STLExtras.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

using namespace axi4mlir;

namespace axi4mlir {
namespace detail {
struct AttributeStorage {
  Attribute::Kind Kind = Attribute::Kind::Unit;
  int64_t IntValue = 0;
  double FloatValue = 0.0;
  std::string StringValue;
  std::vector<Attribute> ArrayValue;
  std::vector<std::pair<std::string, Attribute>> DictValue;
  Type TypeValue;
  AffineMap MapValue;
  accel::OpcodeMapData OpcodeMap;
  accel::OpcodeFlowData OpcodeFlow;
  accel::DmaInitConfig DmaConfig;
};
} // namespace detail
} // namespace axi4mlir

static std::shared_ptr<detail::AttributeStorage>
makeStorage(Attribute::Kind K) {
  auto Storage = std::make_shared<detail::AttributeStorage>();
  Storage->Kind = K;
  return Storage;
}

Attribute Attribute::getUnit() {
  return Attribute(makeStorage(Kind::Unit));
}

Attribute Attribute::getInteger(int64_t Value, Type Ty) {
  auto Storage = makeStorage(Kind::Integer);
  Storage->IntValue = Value;
  Storage->TypeValue = Ty;
  return Attribute(std::move(Storage));
}

Attribute Attribute::getBool(bool Value) {
  return getInteger(Value ? 1 : 0);
}

Attribute Attribute::getFloat(double Value) {
  auto Storage = makeStorage(Kind::Float);
  Storage->FloatValue = Value;
  return Attribute(std::move(Storage));
}

Attribute Attribute::getString(std::string Value) {
  auto Storage = makeStorage(Kind::String);
  Storage->StringValue = std::move(Value);
  return Attribute(std::move(Storage));
}

Attribute Attribute::getArray(std::vector<Attribute> Elements) {
  auto Storage = makeStorage(Kind::Array);
  Storage->ArrayValue = std::move(Elements);
  return Attribute(std::move(Storage));
}

Attribute Attribute::getDictionary(
    std::vector<std::pair<std::string, Attribute>> Entries) {
  auto Storage = makeStorage(Kind::Dictionary);
  Storage->DictValue = std::move(Entries);
  return Attribute(std::move(Storage));
}

Attribute Attribute::getType(Type Ty) {
  auto Storage = makeStorage(Kind::Type);
  Storage->TypeValue = Ty;
  return Attribute(std::move(Storage));
}

Attribute Attribute::getAffineMap(AffineMap Map) {
  auto Storage = makeStorage(Kind::AffineMap);
  Storage->MapValue = Map;
  return Attribute(std::move(Storage));
}

Attribute Attribute::getOpcodeMap(accel::OpcodeMapData Map) {
  auto Storage = makeStorage(Kind::OpcodeMap);
  Storage->OpcodeMap = std::move(Map);
  return Attribute(std::move(Storage));
}

Attribute Attribute::getOpcodeFlow(accel::OpcodeFlowData Flow) {
  auto Storage = makeStorage(Kind::OpcodeFlow);
  Storage->OpcodeFlow = std::move(Flow);
  return Attribute(std::move(Storage));
}

Attribute Attribute::getDmaConfig(accel::DmaInitConfig Config) {
  auto Storage = makeStorage(Kind::DmaConfig);
  Storage->DmaConfig = Config;
  return Attribute(std::move(Storage));
}

Attribute::Kind Attribute::getKind() const {
  assert(Impl && "querying a null Attribute");
  return Impl->Kind;
}

bool Attribute::operator==(const Attribute &Other) const {
  if (Impl == Other.Impl)
    return true;
  if (!Impl || !Other.Impl)
    return false;
  if (Impl->Kind != Other.Impl->Kind)
    return false;
  switch (Impl->Kind) {
  case Kind::Unit:
    return true;
  case Kind::Integer:
    return Impl->IntValue == Other.Impl->IntValue;
  case Kind::Float:
    return Impl->FloatValue == Other.Impl->FloatValue;
  case Kind::String:
    return Impl->StringValue == Other.Impl->StringValue;
  case Kind::Array:
    return Impl->ArrayValue == Other.Impl->ArrayValue;
  case Kind::Dictionary:
    return Impl->DictValue == Other.Impl->DictValue;
  case Kind::Type:
    return Impl->TypeValue == Other.Impl->TypeValue;
  case Kind::AffineMap:
    return Impl->MapValue == Other.Impl->MapValue;
  case Kind::OpcodeMap:
    return Impl->OpcodeMap == Other.Impl->OpcodeMap;
  case Kind::OpcodeFlow:
    return Impl->OpcodeFlow == Other.Impl->OpcodeFlow;
  case Kind::DmaConfig:
    return Impl->DmaConfig == Other.Impl->DmaConfig;
  }
  return false;
}

int64_t Attribute::getIntValue() const {
  assert(getKind() == Kind::Integer);
  return Impl->IntValue;
}

double Attribute::getFloatValue() const {
  assert(getKind() == Kind::Float);
  return Impl->FloatValue;
}

const std::string &Attribute::getStringValue() const {
  assert(getKind() == Kind::String);
  return Impl->StringValue;
}

const std::vector<Attribute> &Attribute::getArrayValue() const {
  assert(getKind() == Kind::Array);
  return Impl->ArrayValue;
}

const std::vector<std::pair<std::string, Attribute>> &
Attribute::getDictionaryValue() const {
  assert(getKind() == Kind::Dictionary);
  return Impl->DictValue;
}

Attribute Attribute::getDictionaryEntry(const std::string &Name) const {
  for (const auto &[Key, Value] : getDictionaryValue())
    if (Key == Name)
      return Value;
  return Attribute();
}

Type Attribute::getTypeValue() const {
  assert(getKind() == Kind::Type || getKind() == Kind::Integer);
  return Impl->TypeValue;
}

AffineMap Attribute::getAffineMapValue() const {
  assert(getKind() == Kind::AffineMap);
  return Impl->MapValue;
}

const accel::OpcodeMapData &Attribute::getOpcodeMapValue() const {
  assert(getKind() == Kind::OpcodeMap);
  return Impl->OpcodeMap;
}

const accel::OpcodeFlowData &Attribute::getOpcodeFlowValue() const {
  assert(getKind() == Kind::OpcodeFlow);
  return Impl->OpcodeFlow;
}

const accel::DmaInitConfig &Attribute::getDmaConfigValue() const {
  assert(getKind() == Kind::DmaConfig);
  return Impl->DmaConfig;
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

/// Prints \p Value so it re-parses to the identical double: max_digits10
/// significant digits, and always carrying a '.' or exponent so the literal
/// stays syntactically distinct from an integer attribute.
static void printFloat(std::ostream &OS, double Value) {
  if (std::isnan(Value)) {
    OS << "nan";
    return;
  }
  if (std::isinf(Value)) {
    OS << (Value < 0 ? "-inf" : "inf");
    return;
  }
  std::ostringstream Buffer;
  Buffer << std::setprecision(std::numeric_limits<double>::max_digits10)
         << Value;
  std::string Text = Buffer.str();
  if (Text.find('.') == std::string::npos &&
      Text.find('e') == std::string::npos &&
      Text.find('E') == std::string::npos)
    Text += ".0";
  OS << Text;
}

/// Prints \p Text as a double-quoted literal, escaping the characters the
/// parser's string lexer decodes (\" \\ \n \t \r, \XX hex for the rest of
/// the non-printable range) so every std::string value round-trips.
static void printEscapedString(std::ostream &OS, const std::string &Text) {
  OS << '"';
  for (char C : Text) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    case '\r':
      OS << "\\r";
      break;
    default: {
      auto Byte = static_cast<unsigned char>(C);
      if (Byte < 0x20 || Byte == 0x7f) {
        static const char Hex[] = "0123456789ABCDEF";
        OS << '\\' << Hex[Byte >> 4] << Hex[Byte & 0xf];
      } else {
        OS << C;
      }
      break;
    }
    }
  }
  OS << '"';
}

static void printAction(std::ostream &OS, const accel::OpcodeAction &Action) {
  using AK = accel::OpcodeAction::Kind;
  switch (Action.ActionKind) {
  case AK::Send:
    OS << "send(" << Action.ArgIndex << ")";
    return;
  case AK::SendLiteral:
    OS << "send_literal(" << Action.Literal << ")";
    return;
  case AK::SendDim:
    OS << "send_dim(" << Action.ArgIndex << ", " << Action.DimIndex << ")";
    return;
  case AK::SendIdx:
    OS << "send_idx(" << Action.DimIndex << ")";
    return;
  case AK::Recv:
    OS << "recv(" << Action.ArgIndex << ")";
    return;
  }
}

static void printFlowScope(std::ostream &OS, const accel::FlowScope &Scope) {
  OS << "(";
  bool First = true;
  for (const accel::FlowItem &Item : Scope.Items) {
    if (!First)
      OS << " ";
    First = false;
    if (Item.isToken())
      OS << Item.Token;
    else
      printFlowScope(OS, *Item.Scope);
  }
  OS << ")";
}

void Attribute::print(std::ostream &OS) const {
  if (!Impl) {
    OS << "<<null attr>>";
    return;
  }
  switch (Impl->Kind) {
  case Kind::Unit:
    OS << "unit";
    return;
  case Kind::Integer:
    OS << Impl->IntValue;
    if (Impl->TypeValue)
      OS << " : " << Impl->TypeValue;
    return;
  case Kind::Float:
    printFloat(OS, Impl->FloatValue);
    return;
  case Kind::String:
    printEscapedString(OS, Impl->StringValue);
    return;
  case Kind::Array:
    OS << "[";
    interleave(
        Impl->ArrayValue, [&](const Attribute &A) { A.print(OS); },
        [&] { OS << ", "; });
    OS << "]";
    return;
  case Kind::Dictionary: {
    // Name-sorted for deterministic output regardless of insertion order.
    std::vector<std::pair<std::string, Attribute>> Sorted = Impl->DictValue;
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const auto &A, const auto &B) {
                       return A.first < B.first;
                     });
    OS << "{";
    interleave(
        Sorted,
        [&](const std::pair<std::string, Attribute> &Entry) {
          OS << Entry.first << " = ";
          Entry.second.print(OS);
        },
        [&] { OS << ", "; });
    OS << "}";
    return;
  }
  case Kind::Type:
    OS << Impl->TypeValue;
    return;
  case Kind::AffineMap:
    OS << "affine_map<" << Impl->MapValue << ">";
    return;
  case Kind::OpcodeMap: {
    OS << "opcode_map<";
    interleave(
        Impl->OpcodeMap.Entries,
        [&](const accel::OpcodeEntry &Entry) {
          OS << Entry.Name << " = [";
          interleave(
              Entry.Actions,
              [&](const accel::OpcodeAction &A) { printAction(OS, A); },
              [&] { OS << ", "; });
          OS << "]";
        },
        [&] { OS << ", "; });
    OS << ">";
    return;
  }
  case Kind::OpcodeFlow:
    OS << "opcode_flow<";
    printFlowScope(OS, Impl->OpcodeFlow.Root);
    OS << ">";
    return;
  case Kind::DmaConfig: {
    const accel::DmaInitConfig &C = Impl->DmaConfig;
    OS << "dma_config<id = " << C.DmaId << ", in = 0x" << std::hex
       << C.InputAddress << "/" << std::dec << C.InputBufferSize
       << ", out = 0x" << std::hex << C.OutputAddress << "/" << std::dec
       << C.OutputBufferSize << ">";
    return;
  }
  }
}

std::string Attribute::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}
