//===- AsmPrinter.cpp - Textual IR printing -------------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints operations in an MLIR-like generic textual form:
///
///   %2 = scf.for(%c0, %c60, %c4) ({
///   ^bb(%arg0: index):
///     ...
///   }) {attr = ...} : (index, index, index) -> ()
///
/// The printed form is the repository's textual IR format: ir/Parser.h
/// parses exactly this output, and RoundTripTest pins the fixpoint
/// `print(parse(print(M))) == print(M)` at every pipeline stage. Any
/// change here must keep the output re-parseable (and the checked-in
/// examples/*.mlir regenerated if the format legitimately changes).
///
//===----------------------------------------------------------------------===//

#include "ir/Operation.h"

#include <algorithm>
#include <map>
#include <ostream>

using namespace axi4mlir;

namespace {

/// Assigns stable SSA names while printing a top-level operation.
class PrintState {
public:
  std::string nameFor(Value V) {
    auto It = Names.find(V.getImpl());
    if (It != Names.end())
      return It->second;
    std::string Name = V.isBlockArgument()
                           ? "%arg" + std::to_string(NextArgId++)
                           : "%" + std::to_string(NextValueId++);
    Names[V.getImpl()] = Name;
    return Name;
  }

  void printOperation(std::ostream &OS, const Operation *Op,
                      unsigned IndentLevel) {
    indent(OS, IndentLevel);
    // Results.
    if (Op->getNumResults() > 0) {
      for (unsigned I = 0, E = Op->getNumResults(); I < E; ++I) {
        if (I)
          OS << ", ";
        OS << nameFor(Op->getResult(I));
      }
      OS << " = ";
    }
    OS << Op->getName();
    // Operands.
    OS << "(";
    for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
      if (I)
        OS << ", ";
      OS << nameFor(Op->getOperand(I));
    }
    OS << ")";
    // Regions.
    if (Op->getNumRegions() > 0) {
      OS << " (";
      for (unsigned R = 0, E = Op->getNumRegions(); R < E; ++R) {
        if (R)
          OS << ", ";
        OS << "{\n";
        const Region &TheRegion = const_cast<Operation *>(Op)->getRegion(R);
        for (const auto &TheBlock :
             const_cast<Region &>(TheRegion).getBlocks()) {
          indent(OS, IndentLevel);
          OS << "^bb(";
          for (unsigned A = 0, AE = TheBlock->getNumArguments(); A < AE;
               ++A) {
            if (A)
              OS << ", ";
            OS << nameFor(TheBlock->getArgument(A)) << ": "
               << TheBlock->getArgument(A).getType();
          }
          OS << "):\n";
          for (const Operation *Nested : TheBlock->getOperations())
            printOperation(OS, Nested, IndentLevel + 1);
        }
        indent(OS, IndentLevel);
        OS << "}";
      }
      OS << ")";
    }
    // Attributes, name-sorted so structurally equal ops print identically
    // regardless of the order setAttr calls happened in.
    if (!Op->getAttrs().empty()) {
      std::vector<NamedAttribute> Sorted = Op->getAttrs();
      std::stable_sort(Sorted.begin(), Sorted.end(),
                       [](const NamedAttribute &A, const NamedAttribute &B) {
                         return A.first < B.first;
                       });
      OS << " {";
      bool First = true;
      for (const NamedAttribute &Entry : Sorted) {
        if (!First)
          OS << ", ";
        First = false;
        OS << Entry.first << " = " << Entry.second;
      }
      OS << "}";
    }
    // Type signature.
    OS << " : (";
    for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
      if (I)
        OS << ", ";
      OS << Op->getOperand(I).getType();
    }
    OS << ") -> (";
    for (unsigned I = 0, E = Op->getNumResults(); I < E; ++I) {
      if (I)
        OS << ", ";
      OS << Op->getResult(I).getType();
    }
    OS << ")\n";
  }

private:
  static void indent(std::ostream &OS, unsigned Level) {
    for (unsigned I = 0; I < Level; ++I)
      OS << "  ";
  }

  std::map<detail::ValueImpl *, std::string> Names;
  unsigned NextValueId = 0;
  unsigned NextArgId = 0;
};

} // namespace

void Operation::print(std::ostream &OS) const {
  PrintState State;
  State.printOperation(OS, this, 0);
}
