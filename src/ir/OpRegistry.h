//===- OpRegistry.h - Operation registry and definitions --------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpDefinition describes the static contract of an operation (operand /
/// result / region counts and a custom verifier). The OpRegistry maps op
/// names ("scf.for", "accel.send", ...) to their definitions; dialects
/// register themselves into a context's registry.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_OPREGISTRY_H
#define AXI4MLIR_IR_OPREGISTRY_H

#include "support/LogicalResult.h"

#include <functional>
#include <map>
#include <string>

namespace axi4mlir {

class Operation;

/// Static description of an operation kind.
struct OpDefinition {
  std::string Name;
  /// Expected operand count, or -1 for variadic.
  int NumOperands = -1;
  /// Expected result count, or -1 for variadic.
  int NumResults = -1;
  /// Expected region count.
  int NumRegions = 0;
  /// True for ops that terminate a block (scf.yield, func.return, ...).
  bool IsTerminator = false;
  /// Optional structural verifier; fills \p Error on failure.
  std::function<LogicalResult(Operation *, std::string &Error)> Verify;
};

/// Name -> definition table. One per MLIRContext.
class OpRegistry {
public:
  /// Registers (or overwrites) an op definition.
  void registerOp(OpDefinition Definition) {
    Definitions[Definition.Name] = std::move(Definition);
  }

  /// Returns the definition for \p Name, or nullptr if unregistered.
  const OpDefinition *lookup(const std::string &Name) const {
    auto It = Definitions.find(Name);
    return It == Definitions.end() ? nullptr : &It->second;
  }

  bool empty() const { return Definitions.empty(); }

private:
  std::map<std::string, OpDefinition> Definitions;
};

} // namespace axi4mlir

#endif // AXI4MLIR_IR_OPREGISTRY_H
