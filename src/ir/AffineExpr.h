//===- AffineExpr.h - Affine expression trees -------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable affine expressions over loop dimensions and symbols, mirroring
/// mlir::AffineExpr. These are the building blocks of the indexing maps on
/// `linalg.generic` (paper Fig. 2a) and of the AXI4MLIR trait attributes
/// `accel_dim` and `permutation_map` (paper Fig. 6a).
///
/// Supported forms: d_i, s_i, constants, add, mul, mod, floordiv — enough to
/// express matmul and strided-convolution indexing (e.g. `d2*2 + d5`).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_AFFINEEXPR_H
#define AXI4MLIR_IR_AFFINEEXPR_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace axi4mlir {

namespace detail {
struct AffineExprStorage;
} // namespace detail

/// A value-semantic handle to an immutable affine expression tree.
class AffineExpr {
public:
  enum class Kind { Constant, Dim, Symbol, Add, Mul, Mod, FloorDiv };

  AffineExpr() = default;

  static AffineExpr getConstant(int64_t Value);
  static AffineExpr getDim(unsigned Position);
  static AffineExpr getSymbol(unsigned Position);
  static AffineExpr getBinary(Kind ExprKind, AffineExpr LHS, AffineExpr RHS);

  Kind getKind() const;
  explicit operator bool() const { return Impl != nullptr; }

  /// For Constant expressions: the constant value.
  int64_t getConstantValue() const;
  /// For Dim/Symbol expressions: the position.
  unsigned getPosition() const;
  /// For binary expressions: the operands.
  AffineExpr getLHS() const;
  AffineExpr getRHS() const;

  bool isConstant() const { return getKind() == Kind::Constant; }
  bool isDim() const { return getKind() == Kind::Dim; }
  bool isSymbol() const { return getKind() == Kind::Symbol; }

  /// Structural equality.
  bool operator==(const AffineExpr &Other) const;
  bool operator!=(const AffineExpr &Other) const { return !(*this == Other); }

  /// Evaluates the expression with the given dimension and symbol values.
  int64_t eval(const std::vector<int64_t> &Dims,
               const std::vector<int64_t> &Symbols = {}) const;

  /// Inserts every dimension position referenced by this expression into
  /// \p Dims. Used by the opcode-flow placement pass to find the deepest
  /// loop an operand's tile depends on (DESIGN.md Sec. 5.1).
  void collectDimPositions(std::set<unsigned> &Dims) const;

  /// Returns the expression with dimension positions remapped:
  /// d_i -> d_{Mapping[i]}. Mapping must cover all referenced dims.
  AffineExpr replaceDims(const std::vector<unsigned> &Mapping) const;

  void print(std::ostream &OS) const;
  std::string str() const;

private:
  explicit AffineExpr(std::shared_ptr<const detail::AffineExprStorage> Impl)
      : Impl(std::move(Impl)) {}

  std::shared_ptr<const detail::AffineExprStorage> Impl;
};

/// Convenience builders mirroring mlir::getAffineDimExpr and friends.
inline AffineExpr getAffineDimExpr(unsigned Position) {
  return AffineExpr::getDim(Position);
}
inline AffineExpr getAffineSymbolExpr(unsigned Position) {
  return AffineExpr::getSymbol(Position);
}
inline AffineExpr getAffineConstantExpr(int64_t Value) {
  return AffineExpr::getConstant(Value);
}

AffineExpr operator+(AffineExpr LHS, AffineExpr RHS);
AffineExpr operator+(AffineExpr LHS, int64_t RHS);
AffineExpr operator*(AffineExpr LHS, int64_t RHS);

inline std::ostream &operator<<(std::ostream &OS, const AffineExpr &Expr) {
  Expr.print(OS);
  return OS;
}

} // namespace axi4mlir

#endif // AXI4MLIR_IR_AFFINEEXPR_H
