//===- Verifier.h - IR structural verifier ----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// verify() walks an operation tree checking registry contracts (operand /
/// result / region counts), per-op custom verifiers, and basic SSA sanity
/// (operands must be non-null). Returns the first error through \p Error.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_VERIFIER_H
#define AXI4MLIR_IR_VERIFIER_H

#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {

class Operation;

/// Verifies \p Root and all nested operations. On failure fills \p Error
/// with a description naming the offending op.
LogicalResult verify(Operation *Root, std::string &Error);

} // namespace axi4mlir

#endif // AXI4MLIR_IR_VERIFIER_H
