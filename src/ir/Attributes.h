//===- Attributes.h - IR attribute system -----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Attribute models MLIR attributes: immutable constant metadata attached to
/// operations. Beyond the builtin kinds (integer, float, string, array,
/// dictionary, type, affine-map, unit) this reproduction adds the three
/// AXI4MLIR attribute kinds the paper introduces (Sec. III-C):
/// `opcode_map`, `opcode_flow` and `dma_init_config`.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_ATTRIBUTES_H
#define AXI4MLIR_IR_ATTRIBUTES_H

#include "ir/AccelTraits.h"
#include "ir/AffineMap.h"
#include "ir/Types.h"

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace axi4mlir {

namespace detail {
struct AttributeStorage;
} // namespace detail

/// Value-semantic handle to an immutable attribute.
class Attribute {
public:
  enum class Kind {
    Unit,
    Integer,
    Float,
    String,
    Array,
    Dictionary,
    Type,
    AffineMap,
    OpcodeMap,
    OpcodeFlow,
    DmaConfig
  };

  Attribute() = default;

  static Attribute getUnit();
  static Attribute getInteger(int64_t Value, Type Ty = Type());
  static Attribute getBool(bool Value);
  static Attribute getFloat(double Value);
  static Attribute getString(std::string Value);
  static Attribute getArray(std::vector<Attribute> Elements);
  static Attribute
  getDictionary(std::vector<std::pair<std::string, Attribute>> Entries);
  static Attribute getType(Type Ty);
  static Attribute getAffineMap(AffineMap Map);
  static Attribute getOpcodeMap(accel::OpcodeMapData Map);
  static Attribute getOpcodeFlow(accel::OpcodeFlowData Flow);
  static Attribute getDmaConfig(accel::DmaInitConfig Config);

  Kind getKind() const;
  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Attribute &Other) const;
  bool operator!=(const Attribute &Other) const { return !(*this == Other); }

  bool isUnit() const { return *this && getKind() == Kind::Unit; }
  bool isInteger() const { return *this && getKind() == Kind::Integer; }
  bool isString() const { return *this && getKind() == Kind::String; }
  bool isArray() const { return *this && getKind() == Kind::Array; }
  bool isAffineMap() const { return *this && getKind() == Kind::AffineMap; }

  int64_t getIntValue() const;
  double getFloatValue() const;
  const std::string &getStringValue() const;
  const std::vector<Attribute> &getArrayValue() const;
  const std::vector<std::pair<std::string, Attribute>> &
  getDictionaryValue() const;
  /// Dictionary lookup; returns a null attribute when missing.
  Attribute getDictionaryEntry(const std::string &Name) const;
  Type getTypeValue() const;
  AffineMap getAffineMapValue() const;
  const accel::OpcodeMapData &getOpcodeMapValue() const;
  const accel::OpcodeFlowData &getOpcodeFlowValue() const;
  const accel::DmaInitConfig &getDmaConfigValue() const;

  void print(std::ostream &OS) const;
  std::string str() const;

private:
  explicit Attribute(std::shared_ptr<const detail::AttributeStorage> Impl)
      : Impl(std::move(Impl)) {}

  std::shared_ptr<const detail::AttributeStorage> Impl;
};

/// A named attribute, as stored on operations (ordered).
using NamedAttribute = std::pair<std::string, Attribute>;

inline std::ostream &operator<<(std::ostream &OS, const Attribute &Attr) {
  Attr.print(OS);
  return OS;
}

} // namespace axi4mlir

#endif // AXI4MLIR_IR_ATTRIBUTES_H
