//===- Builders.cpp - IR construction helper implementation ---------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Builders.h"

#include <cassert>

using namespace axi4mlir;

void OpBuilder::setInsertionPoint(Operation *Op) {
  assert(Op->getBlock() && "op must be in a block");
  Insert.TheBlock = Op->getBlock();
  for (auto It = Insert.TheBlock->getOperations().begin(),
            E = Insert.TheBlock->getOperations().end();
       It != E; ++It) {
    if (*It == Op) {
      Insert.Position = It;
      return;
    }
  }
  assert(false && "op not found in its own block");
}

void OpBuilder::setInsertionPointAfter(Operation *Op) {
  setInsertionPoint(Op);
  ++Insert.Position;
}

Operation *OpBuilder::create(const std::string &Name,
                             std::vector<Value> Operands,
                             std::vector<Type> ResultTypes,
                             std::vector<NamedAttribute> Attributes,
                             unsigned NumRegions) {
  Operation *Op =
      Operation::create(Context, Name, std::move(Operands),
                        std::move(ResultTypes), std::move(Attributes),
                        NumRegions);
  if (Insert.TheBlock)
    Insert.Position = std::next(Insert.TheBlock->insert(Insert.Position, Op));
  return Op;
}
