//===- Parser.cpp - Textual IR parsing ------------------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two-phase recursive descent over the generic printed form:
///
///   1. Syntax: the grammar below is parsed into a lightweight AST whose
///      value references are still names (`%0`, `%arg2`). Attributes and
///      types are resolved immediately — they contain no SSA references.
///   2. Build: the AST is lowered front-to-back into Operation/Region/Block
///      structures, resolving names against a scope map as definitions
///      appear. Dangling uses, redefinitions, and signature mismatches are
///      diagnosed here with the source location recorded in phase 1.
///
/// Grammar (exactly what AsmPrinter emits, whitespace-insensitive between
/// tokens, `//` line comments allowed):
///
///   op       ::= (ssa-id (`,` ssa-id)* `=`)? bare-id `(` ssa-use-list? `)`
///                region-list? attr-dict? `:` `(` type-list? `)` `->`
///                `(` type-list? `)`
///   region-list ::= `(` region (`,` region)* `)`
///   region   ::= `{` block* `}`
///   block    ::= `^` suffix-id `(` (ssa-id `:` type)-list? `)` `:` op*
///   attr-dict::= `{` (bare-id `=` attr)-list? `}`
///
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Lexer.h"
#include "ir/MLIRContext.h"
#include "ir/Verifier.h"
#include "parser/OpcodeParser.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

using namespace axi4mlir;

namespace {

//===----------------------------------------------------------------------===//
// AST
//===----------------------------------------------------------------------===//

/// A use or definition of a named SSA value, with its location for
/// diagnostics.
struct ValueRef {
  std::string Name;
  SourceLocation Loc;
};

struct ParsedOp;

struct ParsedBlock {
  std::vector<std::pair<ValueRef, Type>> Arguments;
  std::vector<ParsedOp> Ops;
};

struct ParsedRegion {
  std::vector<ParsedBlock> Blocks;
};

struct ParsedOp {
  SourceLocation Loc;
  std::string Name;
  std::vector<ValueRef> Results;
  std::vector<ValueRef> Operands;
  std::vector<ParsedRegion> Regions;
  std::vector<NamedAttribute> Attributes;
  SourceLocation SignatureLoc;
  std::vector<Type> OperandTypes;
  std::vector<Type> ResultTypes;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(const std::string &Source, MLIRContext *Context,
         const ParserOptions &Options)
      : Lex(Source), Context(Context), Options(Options) {}

  FailureOr<OwningOpRef> parse();

  std::string renderError() const {
    std::ostringstream OS;
    OS << Options.BufferName << ":" << ErrorLoc.Line << ":" << ErrorLoc.Column
       << ": error: " << ErrorMessage;
    return OS.str();
  }

private:
  // Diagnostics. Only the first error is kept.
  LogicalResult emitError(SourceLocation Loc, const std::string &Message) {
    if (!HasError) {
      HasError = true;
      ErrorLoc = Loc;
      ErrorMessage = Message;
    }
    return failure();
  }
  LogicalResult emitError(const std::string &Message) {
    return emitError(Lex.getLoc(), Message);
  }
  /// Expects and consumes \p C, with a uniform diagnostic naming \p What.
  LogicalResult expect(char C, const char *What) {
    if (Lex.consumeIf(C))
      return success();
    return emitError(std::string("expected '") + C + "' " + What);
  }

  /// Bounds every recursive production (operations/regions, attribute and
  /// type nesting) so hostile input exhausts the limit, not the stack —
  /// axi4mlir-opt feeds untrusted files straight into this parser. The
  /// limit also bounds the AST, keeping its destructor recursion safe.
  static constexpr unsigned MaxNestingDepth = 256;
  struct NestingScope {
    explicit NestingScope(Parser &P) : P(P) { ++P.Depth; }
    ~NestingScope() { --P.Depth; }
    Parser &P;
  };
  LogicalResult checkDepth() {
    if (Depth <= MaxNestingDepth)
      return success();
    return emitError("exceeded the maximum nesting depth (" +
                     std::to_string(MaxNestingDepth) + ")");
  }

  // Phase 1: syntax.
  LogicalResult parseValueRef(ValueRef &Out, const char *What);
  LogicalResult parseOperation(ParsedOp &Out);
  LogicalResult parseRegion(ParsedRegion &Out);
  LogicalResult parseBlock(ParsedBlock &Out);
  LogicalResult parseAttrDict(std::vector<NamedAttribute> &Out,
                              const char *What);
  LogicalResult parseAttribute(Attribute &Out);
  LogicalResult parseType(Type &Out);
  LogicalResult parseTypeList(std::vector<Type> &Out, const char *What);
  LogicalResult parseMemRefBody(Type &Out);
  LogicalResult parseAffineMapBody(AffineMap &Out);
  LogicalResult parseAffineExpr(AffineExpr &Out,
                                const std::vector<std::string> &Dims,
                                const std::vector<std::string> &Symbols);
  LogicalResult parseAffineMulExpr(AffineExpr &Out,
                                   const std::vector<std::string> &Dims,
                                   const std::vector<std::string> &Symbols);
  LogicalResult parseAffinePrimary(AffineExpr &Out,
                                   const std::vector<std::string> &Dims,
                                   const std::vector<std::string> &Symbols);
  LogicalResult parseDmaConfigAttr(Attribute &Out);

  // Phase 2: build.
  LogicalResult defineValue(const ValueRef &Ref, Value V);
  FailureOr<Operation *> buildOperation(const ParsedOp &Parsed);

  Lexer Lex;
  MLIRContext *Context;
  const ParserOptions &Options;

  bool HasError = false;
  SourceLocation ErrorLoc;
  std::string ErrorMessage;
  unsigned Depth = 0;

  /// SSA scope. Printed names are unique across one top-level op, so one
  /// flat map (no shadowing) is exact for printer output and strictly
  /// rejects ambiguous hand-written input.
  std::map<std::string, Value> Scope;
};

//===----------------------------------------------------------------------===//
// Phase 1: syntax
//===----------------------------------------------------------------------===//

LogicalResult Parser::parseValueRef(ValueRef &Out, const char *What) {
  Out.Loc = Lex.getLoc();
  if (!Lex.consumeIf('%'))
    return emitError(std::string("expected SSA value (") + What + ")");
  Out.Name = Lex.lexSuffixId();
  if (Out.Name.empty())
    return emitError(Out.Loc, "expected a name after '%'");
  return success();
}

LogicalResult Parser::parseOperation(ParsedOp &Out) {
  NestingScope Scope(*this);
  if (failed(checkDepth()))
    return failure();
  Out.Loc = Lex.getLoc();

  // Optional result list: `%a, %b = `.
  if (Lex.peek() == '%') {
    do {
      ValueRef Result;
      if (failed(parseValueRef(Result, "operation result")))
        return failure();
      Out.Results.push_back(std::move(Result));
    } while (Lex.consumeIf(','));
    if (!Lex.consumeIf('='))
      return emitError("expected '=' after the result list");
  }

  Out.Name = Lex.lexIdentifier();
  if (Out.Name.empty())
    return emitError("expected an operation name");

  if (failed(expect('(', ("to open the operand list of '" + Out.Name + "'")
                             .c_str())))
    return failure();
  if (Lex.peek() != ')') {
    do {
      ValueRef Operand;
      if (failed(parseValueRef(Operand, "operand")))
        return failure();
      Out.Operands.push_back(std::move(Operand));
    } while (Lex.consumeIf(','));
  }
  if (failed(expect(')', "to close the operand list")))
    return failure();

  // Optional region list: `({...}, {...})`.
  if (Lex.peek() == '(') {
    Lex.consumeIf('(');
    do {
      ParsedRegion TheRegion;
      if (failed(parseRegion(TheRegion)))
        return failure();
      Out.Regions.push_back(std::move(TheRegion));
    } while (Lex.consumeIf(','));
    if (failed(expect(')', "to close the region list")))
      return failure();
  }

  // Optional attribute dictionary.
  if (Lex.peek() == '{' &&
      failed(parseAttrDict(Out.Attributes, "attribute")))
    return failure();

  // Trailing type signature.
  Out.SignatureLoc = Lex.getLoc();
  if (!Lex.consumeIf(':'))
    return emitError("expected ':' before the type signature of '" +
                     Out.Name + "'");
  if (failed(expect('(', "to open the operand types")) ||
      failed(parseTypeList(Out.OperandTypes, "operand type")) ||
      failed(expect(')', "to close the operand types")))
    return failure();
  if (!Lex.consumeIf("->"))
    return emitError("expected '->' in the type signature");
  if (failed(expect('(', "to open the result types")) ||
      failed(parseTypeList(Out.ResultTypes, "result type")) ||
      failed(expect(')', "to close the result types")))
    return failure();
  return success();
}

LogicalResult Parser::parseRegion(ParsedRegion &Out) {
  if (failed(expect('{', "to open a region")))
    return failure();
  while (Lex.peek() == '^') {
    ParsedBlock TheBlock;
    if (failed(parseBlock(TheBlock)))
      return failure();
    Out.Blocks.push_back(std::move(TheBlock));
  }
  if (!Lex.consumeIf('}'))
    return emitError(Out.Blocks.empty()
                         ? "expected '^' block header or '}' in region"
                         : "expected '}' closing the region (unbalanced "
                           "regions?)");
  return success();
}

LogicalResult Parser::parseBlock(ParsedBlock &Out) {
  Lex.consumeIf('^');
  Lex.lexSuffixId(); // Block label; purely cosmetic in printed IR.
  if (failed(expect('(', "to open the block argument list")))
    return failure();
  if (Lex.peek() != ')') {
    do {
      ValueRef Argument;
      if (failed(parseValueRef(Argument, "block argument")))
        return failure();
      if (failed(expect(':', "after the block argument name")))
        return failure();
      Type ArgumentType;
      if (failed(parseType(ArgumentType)))
        return failure();
      Out.Arguments.emplace_back(std::move(Argument), ArgumentType);
    } while (Lex.consumeIf(','));
  }
  if (failed(expect(')', "to close the block argument list")) ||
      failed(expect(':', "after the block header")))
    return failure();

  while (!Lex.atEnd() && Lex.peek() != '^' && Lex.peek() != '}') {
    ParsedOp Op;
    if (failed(parseOperation(Op)))
      return failure();
    Out.Ops.push_back(std::move(Op));
  }
  return success();
}

LogicalResult Parser::parseAttrDict(std::vector<NamedAttribute> &Out,
                                    const char *What) {
  if (failed(expect('{', "to open the attribute dictionary")))
    return failure();
  if (Lex.consumeIf('}'))
    return success();
  do {
    SourceLocation NameLoc = Lex.getLoc();
    std::string Name = Lex.lexIdentifier();
    if (Name.empty())
      return emitError(std::string("expected an ") + What + " name");
    for (const NamedAttribute &Existing : Out)
      if (Existing.first == Name)
        return emitError(NameLoc,
                         std::string("duplicate ") + What + " '" + Name + "'");
    if (!Lex.consumeIf('='))
      return emitError(std::string("expected '=' after ") + What + " '" +
                       Name + "'");
    Attribute Value;
    if (failed(parseAttribute(Value)))
      return failure();
    Out.emplace_back(std::move(Name), Value);
  } while (Lex.consumeIf(','));
  return expect('}', "to close the attribute dictionary");
}

LogicalResult Parser::parseAttribute(Attribute &Out) {
  NestingScope Scope(*this);
  if (failed(checkDepth()))
    return failure();
  char Next = Lex.peek();

  // String attribute.
  if (Next == '"') {
    std::string Message;
    auto Text = Lex.lexStringLiteral(Message);
    if (failed(Text))
      return emitError(Message);
    Out = Attribute::getString(std::move(*Text));
    return success();
  }

  // Array attribute.
  if (Next == '[') {
    Lex.consumeIf('[');
    std::vector<Attribute> Elements;
    if (Lex.peek() != ']') {
      do {
        Attribute Element;
        if (failed(parseAttribute(Element)))
          return failure();
        Elements.push_back(Element);
      } while (Lex.consumeIf(','));
    }
    if (failed(expect(']', "to close the array attribute")))
      return failure();
    Out = Attribute::getArray(std::move(Elements));
    return success();
  }

  // Dictionary attribute.
  if (Next == '{') {
    std::vector<NamedAttribute> Entries;
    if (failed(parseAttrDict(Entries, "dictionary entry")))
      return failure();
    Out = Attribute::getDictionary(std::move(Entries));
    return success();
  }

  // `(` can only start a function type here.
  if (Next == '(') {
    Type FunctionTy;
    if (failed(parseType(FunctionTy)))
      return failure();
    Out = Attribute::getType(FunctionTy);
    return success();
  }

  // `-inf` (the only non-numeric '-' spelling the printer emits).
  if (Next == '-' && Lex.peekSecond() == 'i') {
    Lex.consumeIf('-');
    if (!Lex.consumeKeyword("inf"))
      return emitError("expected 'inf' after '-'");
    Out = Attribute::getFloat(-std::numeric_limits<double>::infinity());
    return success();
  }

  // Integer or float literal.
  if (Next == '-' || (Next >= '0' && Next <= '9')) {
    std::string Message;
    auto Literal = Lex.lexNumber(Message);
    if (failed(Literal))
      return emitError(Message);
    if (Literal->IsFloat) {
      Out = Attribute::getFloat(Literal->FloatValue);
      return success();
    }
    // Optional ` : type` suffix on integer attributes.
    if (Lex.peek() == ':') {
      Lex.consumeIf(':');
      Type IntegerTy;
      if (failed(parseType(IntegerTy)))
        return failure();
      Out = Attribute::getInteger(Literal->IntValue, IntegerTy);
      return success();
    }
    Out = Attribute::getInteger(Literal->IntValue);
    return success();
  }

  // Identifier-led attribute values.
  SourceLocation KeywordLoc = Lex.getLoc();
  Lexer::Checkpoint Before = Lex.save();
  std::string Keyword = Lex.lexIdentifier();
  if (Keyword.empty())
    return emitError("expected an attribute value");

  if (Keyword == "unit") {
    Out = Attribute::getUnit();
    return success();
  }
  if (Keyword == "inf") {
    Out = Attribute::getFloat(std::numeric_limits<double>::infinity());
    return success();
  }
  if (Keyword == "nan") {
    Out = Attribute::getFloat(std::numeric_limits<double>::quiet_NaN());
    return success();
  }
  if (Keyword == "affine_map") {
    if (failed(expect('<', "after 'affine_map'")))
      return failure();
    AffineMap Map;
    if (failed(parseAffineMapBody(Map)))
      return failure();
    if (failed(expect('>', "to close 'affine_map'")))
      return failure();
    Out = Attribute::getAffineMap(Map);
    return success();
  }
  if (Keyword == "opcode_map" || Keyword == "opcode_flow") {
    if (Lex.peek() != '<')
      return emitError(std::string("expected '<' after '") + Keyword + "'");
    // Neither payload grammar nests angle brackets, so the attribute ends
    // at the first '>'; hand the bracketed text to the dedicated parser.
    std::string Message;
    auto Payload = Lex.captureThrough('>', Message);
    if (failed(Payload))
      return emitError(KeywordLoc,
                       std::string("unterminated '") + Keyword + "' attribute");
    std::string SubError;
    if (Keyword == "opcode_map") {
      auto Map = parser::parseOpcodeMap(*Payload, &SubError);
      if (failed(Map))
        return emitError(KeywordLoc, "in opcode_map attribute: " + SubError);
      Out = Attribute::getOpcodeMap(std::move(*Map));
    } else {
      auto Flow = parser::parseOpcodeFlow(*Payload, &SubError);
      if (failed(Flow))
        return emitError(KeywordLoc, "in opcode_flow attribute: " + SubError);
      Out = Attribute::getOpcodeFlow(std::move(*Flow));
    }
    return success();
  }
  if (Keyword == "dma_config")
    return parseDmaConfigAttr(Out);

  // Everything else must be a type (`i32`, `memref<...>`, `index`, ...).
  Lex.restore(Before);
  Type AttrTy;
  if (failed(parseType(AttrTy)))
    return failure();
  Out = Attribute::getType(AttrTy);
  return success();
}

LogicalResult Parser::parseDmaConfigAttr(Attribute &Out) {
  accel::DmaInitConfig Config;
  std::string Message;
  auto parseField = [&](const char *Name, int64_t &Id) -> LogicalResult {
    if (!Lex.consumeKeyword(Name))
      return emitError(std::string("expected '") + Name +
                       "' field in dma_config");
    if (failed(expect('=', "in dma_config field")))
      return failure();
    auto Value = Lex.lexInteger(Message, /*AllowHex=*/true);
    if (failed(Value))
      return emitError(Message);
    Id = *Value;
    return success();
  };
  auto parseRegionField = [&](const char *Name, int64_t &Address,
                              int64_t &Size) -> LogicalResult {
    if (failed(parseField(Name, Address)))
      return failure();
    if (failed(expect('/', "between dma_config address and size")))
      return failure();
    auto Value = Lex.lexInteger(Message, /*AllowHex=*/true);
    if (failed(Value))
      return emitError(Message);
    Size = *Value;
    return success();
  };
  if (failed(expect('<', "after 'dma_config'")) ||
      failed(parseField("id", Config.DmaId)) ||
      failed(expect(',', "in dma_config")) ||
      failed(parseRegionField("in", Config.InputAddress,
                              Config.InputBufferSize)) ||
      failed(expect(',', "in dma_config")) ||
      failed(parseRegionField("out", Config.OutputAddress,
                              Config.OutputBufferSize)) ||
      failed(expect('>', "to close 'dma_config'")))
    return failure();
  Out = Attribute::getDmaConfig(Config);
  return success();
}

LogicalResult Parser::parseType(Type &Out) {
  NestingScope Scope(*this);
  if (failed(checkDepth()))
    return failure();
  // Function type.
  if (Lex.peek() == '(') {
    Lex.consumeIf('(');
    std::vector<Type> Inputs, Results;
    if (failed(parseTypeList(Inputs, "function input type")) ||
        failed(expect(')', "to close the function input types")))
      return failure();
    if (!Lex.consumeIf("->"))
      return emitError("expected '->' in a function type");
    if (failed(expect('(', "to open the function result types")) ||
        failed(parseTypeList(Results, "function result type")) ||
        failed(expect(')', "to close the function result types")))
      return failure();
    Out = FunctionType::get(Context, std::move(Inputs), std::move(Results));
    return success();
  }

  SourceLocation Loc = Lex.getLoc();
  std::string Name = Lex.lexIdentifier();
  if (Name.empty())
    return emitError("expected a type");
  if (Name == "index") {
    Out = Type::getIndex(Context);
    return success();
  }
  if (Name == "none") {
    Out = Type::getNone(Context);
    return success();
  }
  if (Name == "i1") {
    Out = Type::getI1(Context);
    return success();
  }
  if (Name == "i8") {
    Out = Type::getI8(Context);
    return success();
  }
  if (Name == "i16") {
    Out = Type::getI16(Context);
    return success();
  }
  if (Name == "i32") {
    Out = Type::getI32(Context);
    return success();
  }
  if (Name == "i64") {
    Out = Type::getI64(Context);
    return success();
  }
  if (Name == "f32") {
    Out = Type::getF32(Context);
    return success();
  }
  if (Name == "f64") {
    Out = Type::getF64(Context);
    return success();
  }
  if (Name == "memref") {
    if (failed(expect('<', "after 'memref'")))
      return failure();
    if (failed(parseMemRefBody(Out)))
      return failure();
    return expect('>', "to close 'memref'");
  }
  return emitError(Loc, "unknown type '" + Name + "'");
}

LogicalResult Parser::parseTypeList(std::vector<Type> &Out,
                                    const char *What) {
  (void)What;
  if (Lex.peek() == ')')
    return success();
  do {
    Type Element;
    if (failed(parseType(Element)))
      return failure();
    Out.push_back(Element);
  } while (Lex.consumeIf(','));
  return success();
}

LogicalResult Parser::parseMemRefBody(Type &Out) {
  // Shape: every dimension, static or `?`, is followed by a glued `x`.
  std::vector<int64_t> Shape;
  while (true) {
    if (Lex.peek() == '?') {
      Lex.consumeIf('?');
      Shape.push_back(DynamicSize);
    } else if (Lex.peek() >= '0' && Lex.peek() <= '9') {
      std::string Message;
      auto Dim = Lex.lexShapeDim(Message);
      if (failed(Dim))
        return emitError(Message);
      Shape.push_back(*Dim);
    } else {
      break;
    }
    if (!Lex.consumeRawIf('x'))
      return emitError("expected 'x' after a memref dimension");
  }

  SourceLocation ElementLoc = Lex.getLoc();
  Type ElementType;
  if (failed(parseType(ElementType)))
    return failure();
  if (ElementType.isa<MemRefType>() || ElementType.isa<FunctionType>())
    return emitError(ElementLoc,
                     "memref element type must be a scalar type");

  if (!Lex.consumeIf(',')) {
    Out = MemRefType::get(Context, std::move(Shape), ElementType);
    return success();
  }

  // `, strided<[s0, s1], offset: o>` layout.
  if (!Lex.consumeKeyword("strided"))
    return emitError("expected 'strided' after ',' in memref type");
  if (failed(expect('<', "after 'strided'")) ||
      failed(expect('[', "to open the stride list")))
    return failure();
  std::vector<int64_t> Strides;
  if (Lex.peek() != ']') {
    do {
      std::string Message;
      auto Stride = Lex.lexInteger(Message);
      if (failed(Stride))
        return emitError(Message);
      Strides.push_back(*Stride);
    } while (Lex.consumeIf(','));
  }
  if (failed(expect(']', "to close the stride list")) ||
      failed(expect(',', "after the stride list")))
    return failure();
  if (!Lex.consumeKeyword("offset"))
    return emitError("expected 'offset' in strided layout");
  if (failed(expect(':', "after 'offset'")))
    return failure();
  int64_t Offset = 0;
  if (Lex.consumeIf('?')) {
    Offset = DynamicSize;
  } else {
    std::string Message;
    auto Value = Lex.lexInteger(Message);
    if (failed(Value))
      return emitError(Message);
    Offset = *Value;
  }
  if (failed(expect('>', "to close 'strided'")))
    return failure();
  if (Strides.size() != Shape.size())
    return emitError("strided layout has " + std::to_string(Strides.size()) +
                     " strides but the memref has rank " +
                     std::to_string(Shape.size()));
  Out = MemRefType::getStrided(Context, std::move(Shape), ElementType,
                               std::move(Strides), Offset);
  return success();
}

LogicalResult Parser::parseAffineMapBody(AffineMap &Out) {
  // `(d0, d1)[s0] -> (expr, ...)`. Dim/symbol names are normally the
  // canonical d0../s0.. but any identifiers are accepted.
  std::vector<std::string> Dims, Symbols;
  if (failed(expect('(', "to open the affine map dimensions")))
    return failure();
  if (Lex.peek() != ')') {
    do {
      std::string Dim = Lex.lexIdentifier();
      if (Dim.empty())
        return emitError("expected an affine dimension name");
      Dims.push_back(std::move(Dim));
    } while (Lex.consumeIf(','));
  }
  if (failed(expect(')', "to close the affine map dimensions")))
    return failure();
  if (Lex.consumeIf('[')) {
    if (Lex.peek() != ']') {
      do {
        std::string Symbol = Lex.lexIdentifier();
        if (Symbol.empty())
          return emitError("expected an affine symbol name");
        Symbols.push_back(std::move(Symbol));
      } while (Lex.consumeIf(','));
    }
    if (failed(expect(']', "to close the affine map symbols")))
      return failure();
  }
  if (!Lex.consumeIf("->"))
    return emitError("expected '->' in an affine map");
  if (failed(expect('(', "to open the affine map results")))
    return failure();
  std::vector<AffineExpr> Results;
  if (Lex.peek() != ')') {
    do {
      AffineExpr Expr;
      if (failed(parseAffineExpr(Expr, Dims, Symbols)))
        return failure();
      Results.push_back(Expr);
    } while (Lex.consumeIf(','));
  }
  if (failed(expect(')', "to close the affine map results")))
    return failure();
  Out = AffineMap::get(static_cast<unsigned>(Dims.size()),
                       static_cast<unsigned>(Symbols.size()),
                       std::move(Results));
  return success();
}

LogicalResult
Parser::parseAffineExpr(AffineExpr &Out, const std::vector<std::string> &Dims,
                        const std::vector<std::string> &Symbols) {
  if (failed(parseAffineMulExpr(Out, Dims, Symbols)))
    return failure();
  while (Lex.consumeIf('+')) {
    AffineExpr RHS;
    if (failed(parseAffineMulExpr(RHS, Dims, Symbols)))
      return failure();
    Out = AffineExpr::getBinary(AffineExpr::Kind::Add, Out, RHS);
  }
  return success();
}

LogicalResult
Parser::parseAffineMulExpr(AffineExpr &Out,
                           const std::vector<std::string> &Dims,
                           const std::vector<std::string> &Symbols) {
  if (failed(parseAffinePrimary(Out, Dims, Symbols)))
    return failure();
  while (true) {
    AffineExpr::Kind Kind;
    if (Lex.consumeIf('*'))
      Kind = AffineExpr::Kind::Mul;
    else if (Lex.consumeKeyword("mod"))
      Kind = AffineExpr::Kind::Mod;
    else if (Lex.consumeKeyword("floordiv"))
      Kind = AffineExpr::Kind::FloorDiv;
    else
      return success();
    AffineExpr RHS;
    if (failed(parseAffinePrimary(RHS, Dims, Symbols)))
      return failure();
    Out = AffineExpr::getBinary(Kind, Out, RHS);
  }
}

LogicalResult
Parser::parseAffinePrimary(AffineExpr &Out,
                           const std::vector<std::string> &Dims,
                           const std::vector<std::string> &Symbols) {
  NestingScope Scope(*this);
  if (failed(checkDepth()))
    return failure();
  if (Lex.consumeIf('(')) {
    if (failed(parseAffineExpr(Out, Dims, Symbols)))
      return failure();
    return expect(')', "to close the affine subexpression");
  }
  char Next = Lex.peek();
  if (Next == '-' || (Next >= '0' && Next <= '9')) {
    std::string Message;
    auto Value = Lex.lexInteger(Message);
    if (failed(Value))
      return emitError(Message);
    Out = AffineExpr::getConstant(*Value);
    return success();
  }
  SourceLocation Loc = Lex.getLoc();
  std::string Name = Lex.lexIdentifier();
  if (Name.empty())
    return emitError("expected an affine expression");
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (Dims[I] == Name) {
      Out = AffineExpr::getDim(static_cast<unsigned>(I));
      return success();
    }
  }
  for (size_t I = 0; I < Symbols.size(); ++I) {
    if (Symbols[I] == Name) {
      Out = AffineExpr::getSymbol(static_cast<unsigned>(I));
      return success();
    }
  }
  return emitError(Loc, "unknown affine dimension or symbol '" + Name + "'");
}

//===----------------------------------------------------------------------===//
// Phase 2: build
//===----------------------------------------------------------------------===//

LogicalResult Parser::defineValue(const ValueRef &Ref, Value V) {
  auto [It, Inserted] = Scope.emplace(Ref.Name, V);
  (void)It;
  if (!Inserted)
    return emitError(Ref.Loc, "redefinition of value '%" + Ref.Name + "'");
  return success();
}

FailureOr<Operation *> Parser::buildOperation(const ParsedOp &Parsed) {
  if (Parsed.Operands.size() != Parsed.OperandTypes.size()) {
    emitError(Parsed.SignatureLoc,
              "'" + Parsed.Name + "' has " +
                  std::to_string(Parsed.Operands.size()) +
                  " operands but the signature lists " +
                  std::to_string(Parsed.OperandTypes.size()) + " types");
    return failure();
  }
  if (Parsed.Results.size() != Parsed.ResultTypes.size()) {
    emitError(Parsed.SignatureLoc,
              "'" + Parsed.Name + "' defines " +
                  std::to_string(Parsed.Results.size()) +
                  " results but the signature lists " +
                  std::to_string(Parsed.ResultTypes.size()) + " types");
    return failure();
  }

  std::vector<Value> Operands;
  Operands.reserve(Parsed.Operands.size());
  for (size_t I = 0; I < Parsed.Operands.size(); ++I) {
    const ValueRef &Use = Parsed.Operands[I];
    auto It = Scope.find(Use.Name);
    if (It == Scope.end()) {
      emitError(Use.Loc, "use of undefined value '%" + Use.Name + "'");
      return failure();
    }
    if (It->second.getType() != Parsed.OperandTypes[I]) {
      emitError(Use.Loc, "operand #" + std::to_string(I) + " of '" +
                             Parsed.Name + "' has type " +
                             It->second.getType().str() +
                             " but the signature says " +
                             Parsed.OperandTypes[I].str());
      return failure();
    }
    Operands.push_back(It->second);
  }

  // Own the op until this builder completes: nested ops are pushed into
  // their blocks as they are built, so destroying the root on a failure
  // path reclaims the whole partial tree.
  OwningOpRef Guard(Operation::create(
      Context, Parsed.Name, std::move(Operands), Parsed.ResultTypes,
      Parsed.Attributes, static_cast<unsigned>(Parsed.Regions.size())));
  Operation *Op = Guard.get();

  for (size_t I = 0; I < Parsed.Results.size(); ++I) {
    if (failed(defineValue(Parsed.Results[I], Op->getResult(I))))
      return failure();
  }
  for (size_t R = 0; R < Parsed.Regions.size(); ++R) {
    Region &TheRegion = Op->getRegion(static_cast<unsigned>(R));
    for (const ParsedBlock &ParsedB : Parsed.Regions[R].Blocks) {
      Block &TheBlock = TheRegion.emplaceBlock();
      for (const auto &[ArgRef, ArgType] : ParsedB.Arguments) {
        Value Argument = TheBlock.addArgument(ArgType);
        if (failed(defineValue(ArgRef, Argument)))
          return failure();
      }
      for (const ParsedOp &Nested : ParsedB.Ops) {
        auto Built = buildOperation(Nested);
        if (failed(Built))
          return failure();
        TheBlock.push_back(*Built);
      }
    }
  }
  return Guard.release();
}

FailureOr<OwningOpRef> Parser::parse() {
  ParsedOp TopLevel;
  if (failed(parseOperation(TopLevel)))
    return failure();
  if (!Lex.atEnd()) {
    emitError("expected a single top-level operation; found trailing input");
    return failure();
  }

  auto Built = buildOperation(TopLevel);
  if (failed(Built))
    return failure();
  OwningOpRef Result(*Built);

  if (Options.Verify) {
    std::string VerifyError;
    if (failed(verify(Result.get(), VerifyError))) {
      emitError(TopLevel.Loc, "verification failed: " + VerifyError);
      return failure();
    }
  }
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

FailureOr<OwningOpRef>
axi4mlir::parseSourceString(const std::string &Source, MLIRContext *Context,
                            std::string *Error,
                            const ParserOptions &Options) {
  Parser TheParser(Source, Context, Options);
  auto Result = TheParser.parse();
  if (failed(Result) && Error)
    *Error = TheParser.renderError();
  return Result;
}

FailureOr<OwningOpRef> axi4mlir::parseSourceFile(const std::string &Path,
                                                 MLIRContext *Context,
                                                 std::string *Error,
                                                 ParserOptions Options) {
  std::ifstream Stream(Path, std::ios::binary);
  if (!Stream) {
    if (Error)
      *Error = "cannot open input file '" + Path + "'";
    return failure();
  }
  std::ostringstream Buffer;
  Buffer << Stream.rdbuf();
  if (Options.BufferName == "<string>")
    Options.BufferName = Path;
  return parseSourceString(Buffer.str(), Context, Error, Options);
}
