//===- Verifier.cpp - IR structural verifier implementation ---------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/MLIRContext.h"
#include "ir/OpRegistry.h"
#include "ir/Operation.h"

using namespace axi4mlir;

static LogicalResult verifyOne(Operation *Op, std::string &Error) {
  const OpRegistry &Registry = Op->getContext()->getOpRegistry();
  const OpDefinition *Definition = Registry.lookup(Op->getName());
  if (!Definition) {
    Error = "unregistered operation '" + Op->getName() + "'";
    return failure();
  }
  if (Definition->NumOperands >= 0 &&
      Op->getNumOperands() != static_cast<unsigned>(Definition->NumOperands)) {
    Error = "op '" + Op->getName() + "' expects " +
            std::to_string(Definition->NumOperands) + " operands, got " +
            std::to_string(Op->getNumOperands());
    return failure();
  }
  if (Definition->NumResults >= 0 &&
      Op->getNumResults() != static_cast<unsigned>(Definition->NumResults)) {
    Error = "op '" + Op->getName() + "' expects " +
            std::to_string(Definition->NumResults) + " results, got " +
            std::to_string(Op->getNumResults());
    return failure();
  }
  if (Op->getNumRegions() != static_cast<unsigned>(Definition->NumRegions)) {
    Error = "op '" + Op->getName() + "' expects " +
            std::to_string(Definition->NumRegions) + " regions, got " +
            std::to_string(Op->getNumRegions());
    return failure();
  }
  for (unsigned I = 0, E = Op->getNumOperands(); I < E; ++I) {
    if (!Op->getOperand(I)) {
      Error = "op '" + Op->getName() + "' has a null operand #" +
              std::to_string(I);
      return failure();
    }
  }
  if (Definition->Verify)
    return Definition->Verify(Op, Error);
  return success();
}

LogicalResult axi4mlir::verify(Operation *Root, std::string &Error) {
  bool Failed = false;
  Root->walk([&](Operation *Op) {
    if (Failed)
      return;
    if (failed(verifyOne(Op, Error)))
      Failed = true;
  });
  return failure(Failed);
}
