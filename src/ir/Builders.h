//===- Builders.h - IR construction helpers ---------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OpBuilder mirrors mlir::OpBuilder: an insertion point into a block plus
/// convenience type/attribute factories. All dialect op-creation helpers
/// take an OpBuilder.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_BUILDERS_H
#define AXI4MLIR_IR_BUILDERS_H

#include "ir/MLIRContext.h"
#include "ir/Operation.h"

namespace axi4mlir {

/// Builds operations at a given insertion point.
class OpBuilder {
public:
  explicit OpBuilder(MLIRContext *Context) : Context(Context) {}

  MLIRContext *getContext() const { return Context; }

  //===--------------------------------------------------------------------===//
  // Insertion point management
  //===--------------------------------------------------------------------===//

  struct InsertPoint {
    Block *TheBlock = nullptr;
    Block::OpListType::iterator Position;
  };

  void setInsertionPointToEnd(Block *TheBlock) {
    Insert.TheBlock = TheBlock;
    Insert.Position = TheBlock->getOperations().end();
  }
  void setInsertionPointToStart(Block *TheBlock) {
    Insert.TheBlock = TheBlock;
    Insert.Position = TheBlock->getOperations().begin();
  }
  /// Inserts new ops immediately before \p Op.
  void setInsertionPoint(Operation *Op);
  /// Inserts new ops immediately after \p Op.
  void setInsertionPointAfter(Operation *Op);

  Block *getInsertionBlock() const { return Insert.TheBlock; }
  InsertPoint saveInsertionPoint() const { return Insert; }
  void restoreInsertionPoint(InsertPoint Point) { Insert = Point; }

  //===--------------------------------------------------------------------===//
  // Operation creation
  //===--------------------------------------------------------------------===//

  /// Creates an op and inserts it at the current insertion point (if set).
  Operation *create(const std::string &Name, std::vector<Value> Operands = {},
                    std::vector<Type> ResultTypes = {},
                    std::vector<NamedAttribute> Attributes = {},
                    unsigned NumRegions = 0);

  //===--------------------------------------------------------------------===//
  // Common type shortcuts
  //===--------------------------------------------------------------------===//

  Type getIndexType() { return Type::getIndex(Context); }
  Type getI32Type() { return Type::getI32(Context); }
  Type getI64Type() { return Type::getI64(Context); }
  Type getF32Type() { return Type::getF32(Context); }
  Type getF64Type() { return Type::getF64(Context); }

private:
  MLIRContext *Context;
  InsertPoint Insert;
};

} // namespace axi4mlir

#endif // AXI4MLIR_IR_BUILDERS_H
