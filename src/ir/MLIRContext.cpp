//===- MLIRContext.cpp - IR context implementation ------------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/MLIRContext.h"

#include "ir/OpRegistry.h"

using namespace axi4mlir;

MLIRContext::MLIRContext() : Registry(std::make_unique<OpRegistry>()) {}

MLIRContext::~MLIRContext() = default;
