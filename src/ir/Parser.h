//===- Parser.h - Textual IR parsing ----------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A recursive-descent parser for the generic textual form AsmPrinter
/// emits, closing the round-trip `parse(print(M)) == M`:
///
///   func.func() ({
///   ^bb(%arg0: memref<16x16xi32>, ...):
///     linalg.matmul(%arg0, %arg1, %arg2) {num_inputs = 2}
///         : (memref<16x16xi32>, ...) -> ()
///     func.return() : () -> ()
///   }) {sym_name = "matmul_call", function_type = (...) -> ()} : () -> ()
///
/// Supported: SSA result/operand names, block arguments, nested regions,
/// every builtin attribute kind (unit/int/float/string/array/dict, type,
/// affine_map) plus the AXI4MLIR attributes (opcode_map, opcode_flow,
/// dma_config, delegated to parser/OpcodeParser), and the full type grammar
/// of ir/Types.h (scalars, strided memrefs, function types). Malformed
/// input produces `<buffer>:<line>:<col>: error: ...` diagnostics.
///
/// This is what lets axi4mlir-opt consume `.mlir` files (paper Fig. 4 step
/// 1 starts from linalg IR in files) instead of only the programmatic
/// workload builders.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_PARSER_H
#define AXI4MLIR_IR_PARSER_H

#include "ir/Operation.h"
#include "support/LogicalResult.h"

#include <string>

namespace axi4mlir {

class MLIRContext;

/// Options controlling textual IR parsing.
struct ParserOptions {
  /// Run the structural verifier (registry contracts, null operands) over
  /// the parsed IR and fail on violations.
  bool Verify = true;
  /// Buffer name used as the diagnostic prefix (a file path, typically).
  std::string BufferName = "<string>";
};

/// Parses \p Source, which must hold exactly one top-level operation in the
/// generic form, into an owned operation tree. Dialects consulted by the
/// verifier must already be registered on \p Context. On failure returns
/// failure and, when \p Error is non-null, fills it with a
/// `<buffer>:<line>:<col>: error: ...` diagnostic.
FailureOr<OwningOpRef> parseSourceString(const std::string &Source,
                                         MLIRContext *Context,
                                         std::string *Error,
                                         const ParserOptions &Options = {});

/// Reads the file at \p Path and parses it with \p Options (BufferName
/// defaults to the path).
FailureOr<OwningOpRef> parseSourceFile(const std::string &Path,
                                       MLIRContext *Context,
                                       std::string *Error,
                                       ParserOptions Options = {});

} // namespace axi4mlir

#endif // AXI4MLIR_IR_PARSER_H
