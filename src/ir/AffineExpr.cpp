//===- AffineExpr.cpp - Affine expression implementation ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/AffineExpr.h"

#include <cassert>
#include <sstream>

using namespace axi4mlir;

namespace axi4mlir {
namespace detail {
struct AffineExprStorage {
  AffineExpr::Kind Kind;
  int64_t Constant = 0;
  unsigned Position = 0;
  AffineExpr LHS;
  AffineExpr RHS;
};
} // namespace detail
} // namespace axi4mlir

AffineExpr AffineExpr::getConstant(int64_t Value) {
  auto Storage = std::make_shared<detail::AffineExprStorage>();
  Storage->Kind = Kind::Constant;
  Storage->Constant = Value;
  return AffineExpr(std::move(Storage));
}

AffineExpr AffineExpr::getDim(unsigned Position) {
  auto Storage = std::make_shared<detail::AffineExprStorage>();
  Storage->Kind = Kind::Dim;
  Storage->Position = Position;
  return AffineExpr(std::move(Storage));
}

AffineExpr AffineExpr::getSymbol(unsigned Position) {
  auto Storage = std::make_shared<detail::AffineExprStorage>();
  Storage->Kind = Kind::Symbol;
  Storage->Position = Position;
  return AffineExpr(std::move(Storage));
}

AffineExpr AffineExpr::getBinary(Kind ExprKind, AffineExpr LHS,
                                 AffineExpr RHS) {
  assert(LHS && RHS && "binary affine expr requires both operands");
  auto Storage = std::make_shared<detail::AffineExprStorage>();
  Storage->Kind = ExprKind;
  Storage->LHS = LHS;
  Storage->RHS = RHS;
  return AffineExpr(std::move(Storage));
}

AffineExpr::Kind AffineExpr::getKind() const {
  assert(Impl && "querying a null AffineExpr");
  return Impl->Kind;
}

int64_t AffineExpr::getConstantValue() const {
  assert(getKind() == Kind::Constant);
  return Impl->Constant;
}

unsigned AffineExpr::getPosition() const {
  assert(getKind() == Kind::Dim || getKind() == Kind::Symbol);
  return Impl->Position;
}

AffineExpr AffineExpr::getLHS() const { return Impl->LHS; }
AffineExpr AffineExpr::getRHS() const { return Impl->RHS; }

bool AffineExpr::operator==(const AffineExpr &Other) const {
  if (Impl == Other.Impl)
    return true;
  if (!Impl || !Other.Impl)
    return false;
  if (Impl->Kind != Other.Impl->Kind)
    return false;
  switch (Impl->Kind) {
  case Kind::Constant:
    return Impl->Constant == Other.Impl->Constant;
  case Kind::Dim:
  case Kind::Symbol:
    return Impl->Position == Other.Impl->Position;
  case Kind::Add:
  case Kind::Mul:
  case Kind::Mod:
  case Kind::FloorDiv:
    return Impl->LHS == Other.Impl->LHS && Impl->RHS == Other.Impl->RHS;
  }
  return false;
}

int64_t AffineExpr::eval(const std::vector<int64_t> &Dims,
                         const std::vector<int64_t> &Symbols) const {
  switch (getKind()) {
  case Kind::Constant:
    return Impl->Constant;
  case Kind::Dim:
    assert(Impl->Position < Dims.size() && "dim position out of range");
    return Dims[Impl->Position];
  case Kind::Symbol:
    assert(Impl->Position < Symbols.size() && "symbol position out of range");
    return Symbols[Impl->Position];
  case Kind::Add:
    return Impl->LHS.eval(Dims, Symbols) + Impl->RHS.eval(Dims, Symbols);
  case Kind::Mul:
    return Impl->LHS.eval(Dims, Symbols) * Impl->RHS.eval(Dims, Symbols);
  case Kind::Mod: {
    int64_t RHS = Impl->RHS.eval(Dims, Symbols);
    assert(RHS > 0 && "affine mod by non-positive value");
    int64_t LHS = Impl->LHS.eval(Dims, Symbols);
    int64_t Rem = LHS % RHS;
    return Rem < 0 ? Rem + RHS : Rem;
  }
  case Kind::FloorDiv: {
    int64_t RHS = Impl->RHS.eval(Dims, Symbols);
    assert(RHS > 0 && "affine floordiv by non-positive value");
    int64_t LHS = Impl->LHS.eval(Dims, Symbols);
    int64_t Quotient = LHS / RHS;
    if ((LHS % RHS) != 0 && ((LHS < 0) != (RHS < 0)))
      --Quotient;
    return Quotient;
  }
  }
  assert(false && "unhandled affine expr kind");
  return 0;
}

void AffineExpr::collectDimPositions(std::set<unsigned> &Dims) const {
  if (!Impl)
    return;
  switch (Impl->Kind) {
  case Kind::Dim:
    Dims.insert(Impl->Position);
    return;
  case Kind::Constant:
  case Kind::Symbol:
    return;
  case Kind::Add:
  case Kind::Mul:
  case Kind::Mod:
  case Kind::FloorDiv:
    Impl->LHS.collectDimPositions(Dims);
    Impl->RHS.collectDimPositions(Dims);
    return;
  }
}

AffineExpr AffineExpr::replaceDims(const std::vector<unsigned> &Mapping) const {
  switch (getKind()) {
  case Kind::Constant:
  case Kind::Symbol:
    return *this;
  case Kind::Dim:
    assert(Impl->Position < Mapping.size() && "dim not covered by mapping");
    return getDim(Mapping[Impl->Position]);
  case Kind::Add:
  case Kind::Mul:
  case Kind::Mod:
  case Kind::FloorDiv:
    return getBinary(Impl->Kind, Impl->LHS.replaceDims(Mapping),
                     Impl->RHS.replaceDims(Mapping));
  }
  assert(false && "unhandled affine expr kind");
  return {};
}

void AffineExpr::print(std::ostream &OS) const {
  if (!Impl) {
    OS << "<<null expr>>";
    return;
  }
  switch (Impl->Kind) {
  case Kind::Constant:
    OS << Impl->Constant;
    return;
  case Kind::Dim:
    OS << "d" << Impl->Position;
    return;
  case Kind::Symbol:
    OS << "s" << Impl->Position;
    return;
  case Kind::Add:
    OS << "(";
    Impl->LHS.print(OS);
    OS << " + ";
    Impl->RHS.print(OS);
    OS << ")";
    return;
  case Kind::Mul:
    OS << "(";
    Impl->LHS.print(OS);
    OS << " * ";
    Impl->RHS.print(OS);
    OS << ")";
    return;
  case Kind::Mod:
    OS << "(";
    Impl->LHS.print(OS);
    OS << " mod ";
    Impl->RHS.print(OS);
    OS << ")";
    return;
  case Kind::FloorDiv:
    OS << "(";
    Impl->LHS.print(OS);
    OS << " floordiv ";
    Impl->RHS.print(OS);
    OS << ")";
    return;
  }
}

std::string AffineExpr::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

AffineExpr axi4mlir::operator+(AffineExpr LHS, AffineExpr RHS) {
  return AffineExpr::getBinary(AffineExpr::Kind::Add, LHS, RHS);
}

AffineExpr axi4mlir::operator+(AffineExpr LHS, int64_t RHS) {
  return LHS + AffineExpr::getConstant(RHS);
}

AffineExpr axi4mlir::operator*(AffineExpr LHS, int64_t RHS) {
  return AffineExpr::getBinary(AffineExpr::Kind::Mul, LHS,
                               AffineExpr::getConstant(RHS));
}
