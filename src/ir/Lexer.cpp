//===- Lexer.cpp - Character cursor for the textual IR parser -------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Lexer.h"

#include "support/ParseInt.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

using namespace axi4mlir;

void Lexer::advance() {
  if (Pos >= Source.size())
    return;
  if (Source[Pos] == '\n') {
    ++Loc.Line;
    Loc.Column = 1;
  } else {
    ++Loc.Column;
  }
  ++Pos;
}

void Lexer::skipToSignificant() {
  while (Pos < Source.size()) {
    char C = Source[Pos];
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (Pos < Source.size() && Source[Pos] != '\n')
        advance();
      continue;
    }
    break;
  }
}

SourceLocation Lexer::getLoc() {
  skipToSignificant();
  return Loc;
}

bool Lexer::atEnd() {
  skipToSignificant();
  return Pos >= Source.size();
}

char Lexer::peek() {
  skipToSignificant();
  return Pos < Source.size() ? Source[Pos] : '\0';
}

char Lexer::peekSecond() {
  skipToSignificant();
  return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
}

bool Lexer::consumeIf(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

bool Lexer::consumeIf(const char *Punct) {
  skipToSignificant();
  size_t Length = std::char_traits<char>::length(Punct);
  if (Source.compare(Pos, Length, Punct) != 0)
    return false;
  for (size_t I = 0; I < Length; ++I)
    advance();
  return true;
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '.' || C == '$';
}

bool Lexer::consumeKeyword(const char *Keyword) {
  skipToSignificant();
  size_t Length = std::char_traits<char>::length(Keyword);
  if (Source.compare(Pos, Length, Keyword) != 0)
    return false;
  if (Pos + Length < Source.size() && isIdentChar(Source[Pos + Length]))
    return false;
  for (size_t I = 0; I < Length; ++I)
    advance();
  return true;
}

bool Lexer::consumeRawIf(char C) {
  if (Pos >= Source.size() || Source[Pos] != C)
    return false;
  advance();
  return true;
}

std::string Lexer::lexIdentifier() {
  skipToSignificant();
  if (Pos >= Source.size())
    return {};
  char First = Source[Pos];
  if (!std::isalpha(static_cast<unsigned char>(First)) && First != '_')
    return {};
  std::string Result;
  while (Pos < Source.size() && isIdentChar(Source[Pos])) {
    Result.push_back(Source[Pos]);
    advance();
  }
  return Result;
}

std::string Lexer::lexSuffixId() {
  std::string Result;
  while (Pos < Source.size() && isIdentChar(Source[Pos])) {
    Result.push_back(Source[Pos]);
    advance();
  }
  return Result;
}

FailureOr<int64_t> Lexer::lexInteger(std::string &Error, bool AllowHex) {
  skipToSignificant();
  size_t Start = Pos;
  bool Negative = false;
  if (Pos < Source.size() && (Source[Pos] == '-' || Source[Pos] == '+')) {
    Negative = Source[Pos] == '-';
    advance();
  }
  int Base = 10;
  if (AllowHex && Pos + 1 < Source.size() && Source[Pos] == '0' &&
      (Source[Pos + 1] == 'x' || Source[Pos + 1] == 'X')) {
    Base = 16;
    advance();
    advance();
  }
  size_t DigitsStart = Pos;
  while (Pos < Source.size() &&
         (std::isdigit(static_cast<unsigned char>(Source[Pos])) ||
          (Base == 16 &&
           std::isxdigit(static_cast<unsigned char>(Source[Pos])))))
    advance();
  if (Pos == DigitsStart) {
    Error = "expected an integer literal";
    return failure();
  }
  int64_t Value = 0;
  if (!parseCheckedInt64(Source.data() + DigitsStart, Source.data() + Pos,
                         Negative, Base, Value)) {
    Error = "integer literal '" + Source.substr(Start, Pos - Start) +
            "' is out of range";
    return failure();
  }
  return Value;
}

FailureOr<int64_t> Lexer::lexShapeDim(std::string &Error) {
  skipToSignificant();
  size_t DigitsStart = Pos;
  while (Pos < Source.size() &&
         std::isdigit(static_cast<unsigned char>(Source[Pos])))
    advance();
  if (Pos == DigitsStart) {
    Error = "expected a dimension size";
    return failure();
  }
  const char *First = Source.data() + DigitsStart;
  const char *Last = Source.data() + Pos;
  int64_t Value = 0;
  auto [End, Errc] = std::from_chars(First, Last, Value, 10);
  if (Errc != std::errc() || End != Last) {
    Error = "dimension size '" +
            Source.substr(DigitsStart, Pos - DigitsStart) +
            "' is out of range";
    return failure();
  }
  return Value;
}

FailureOr<NumberLiteral> Lexer::lexNumber(std::string &Error) {
  skipToSignificant();
  Checkpoint Start = save();
  if (Pos < Source.size() && Source[Pos] == '-')
    advance();
  size_t DigitsStart = Pos;
  while (Pos < Source.size() &&
         std::isdigit(static_cast<unsigned char>(Source[Pos])))
    advance();
  if (Pos == DigitsStart) {
    Error = "expected a numeric literal";
    restore(Start);
    return failure();
  }
  bool IsFloat = false;
  if (Pos < Source.size() && Source[Pos] == '.') {
    IsFloat = true;
    advance();
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(Source[Pos])))
      advance();
  }
  if (Pos < Source.size() && (Source[Pos] == 'e' || Source[Pos] == 'E')) {
    Checkpoint BeforeExponent = save();
    advance();
    if (Pos < Source.size() && (Source[Pos] == '+' || Source[Pos] == '-'))
      advance();
    size_t ExpDigits = Pos;
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(Source[Pos])))
      advance();
    if (Pos == ExpDigits) {
      // Not an exponent after all (e.g. an identifier like `8elems` would be
      // malformed anyway); rewind to before the 'e', restoring line/column
      // so later diagnostics on this line stay accurate.
      restore(BeforeExponent);
    } else {
      IsFloat = true;
    }
  }
  NumberLiteral Literal;
  Literal.Spelling = Source.substr(Start.Pos, Pos - Start.Pos);
  Literal.IsFloat = IsFloat;
  if (IsFloat) {
    const char *Text = Literal.Spelling.c_str();
    char *End = nullptr;
    Literal.FloatValue = std::strtod(Text, &End);
    if (End != Text + Literal.Spelling.size()) {
      Error = "malformed float literal '" + Literal.Spelling + "'";
      return failure();
    }
  } else {
    const char *First = Literal.Spelling.data();
    const char *Last = First + Literal.Spelling.size();
    auto [End, Errc] = std::from_chars(First, Last, Literal.IntValue, 10);
    if (Errc != std::errc() || End != Last) {
      Error = "integer literal '" + Literal.Spelling + "' is out of range";
      return failure();
    }
  }
  return Literal;
}

FailureOr<std::string> Lexer::lexStringLiteral(std::string &Error) {
  if (!consumeIf('"')) {
    Error = "expected a string literal";
    return failure();
  }
  std::string Result;
  while (true) {
    if (Pos >= Source.size() || Source[Pos] == '\n') {
      Error = "unterminated string literal";
      return failure();
    }
    char C = Source[Pos];
    advance();
    if (C == '"')
      return Result;
    if (C != '\\') {
      Result.push_back(C);
      continue;
    }
    if (Pos >= Source.size()) {
      Error = "unterminated escape in string literal";
      return failure();
    }
    char E = Source[Pos];
    advance();
    switch (E) {
    case 'n':
      Result.push_back('\n');
      break;
    case 't':
      Result.push_back('\t');
      break;
    case 'r':
      Result.push_back('\r');
      break;
    case '"':
    case '\\':
      Result.push_back(E);
      break;
    default: {
      auto hexValue = [](char H) -> int {
        if (H >= '0' && H <= '9')
          return H - '0';
        if (H >= 'a' && H <= 'f')
          return H - 'a' + 10;
        if (H >= 'A' && H <= 'F')
          return H - 'A' + 10;
        return -1;
      };
      int High = hexValue(E);
      int Low = Pos < Source.size() ? hexValue(Source[Pos]) : -1;
      if (High < 0 || Low < 0) {
        Error = std::string("invalid escape '\\") + E +
                "' in string literal";
        return failure();
      }
      advance();
      Result.push_back(static_cast<char>(High * 16 + Low));
      break;
    }
    }
  }
}

Lexer::Checkpoint Lexer::save() { return {Pos, Loc}; }

void Lexer::restore(Checkpoint C) {
  Pos = C.Pos;
  Loc = C.Loc;
}

FailureOr<std::string> Lexer::captureThrough(char Close, std::string &Error) {
  size_t End = Source.find(Close, Pos);
  if (End == std::string::npos) {
    Error = std::string("expected '") + Close + "'";
    return failure();
  }
  std::string Result = Source.substr(Pos, End + 1 - Pos);
  while (Pos <= End)
    advance();
  return Result;
}
