//===- Operation.cpp - Operation/Block/Region implementation --------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/Operation.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace axi4mlir;

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

Block &Region::emplaceBlock() {
  Blocks.push_back(std::make_unique<Block>(this));
  return *Blocks.back();
}

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

Block::~Block() {
  // Destroy operations front-to-back; each Operation recursively destroys
  // its regions (and thus nested blocks/ops). Unlink each op first: the
  // whole block is going away, so there is no list left to erase from.
  for (Operation *Op : Operations) {
    Op->ParentBlock = nullptr;
    Op->destroy();
  }
  Operations.clear();
}

Operation *Block::getParentOp() const {
  return Parent ? Parent->getParentOp() : nullptr;
}

Value Block::addArgument(Type Ty) {
  auto Impl = std::make_unique<detail::ValueImpl>();
  Impl->Ty = Ty;
  Impl->OwnerBlock = this;
  Impl->Index = Arguments.size();
  Arguments.push_back(std::move(Impl));
  return Value(Arguments.back().get());
}

Value Block::getArgument(unsigned Index) const {
  assert(Index < Arguments.size() && "block argument index out of range");
  return Value(Arguments[Index].get());
}

void Block::push_back(Operation *Op) {
  assert(!Op->getBlock() && "operation already inserted in a block");
  Op->ParentBlock = this;
  Op->PositionInBlock = Operations.insert(Operations.end(), Op);
}

Block::OpListType::iterator Block::insert(OpListType::iterator Position,
                                          Operation *Op) {
  assert(!Op->getBlock() && "operation already inserted in a block");
  Op->ParentBlock = this;
  Op->PositionInBlock = Operations.insert(Position, Op);
  return Op->PositionInBlock;
}

void Block::remove(Operation *Op) {
  assert(Op->getBlock() == this && "operation not in this block");
  Operations.erase(Op->PositionInBlock);
  Op->ParentBlock = nullptr;
}

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation *Operation::create(MLIRContext *Context, std::string Name,
                             std::vector<Value> Operands,
                             std::vector<Type> ResultTypes,
                             std::vector<NamedAttribute> Attributes,
                             unsigned NumRegions) {
  auto *Op = new Operation(Context, std::move(Name));
  Op->Operands = std::move(Operands);
  Op->Results.reserve(ResultTypes.size());
  for (unsigned I = 0, E = ResultTypes.size(); I < E; ++I) {
    auto Impl = std::make_unique<detail::ValueImpl>();
    Impl->Ty = ResultTypes[I];
    Impl->DefiningOp = Op;
    Impl->Index = I;
    Op->Results.push_back(std::move(Impl));
  }
  Op->Attributes = std::move(Attributes);
  Op->Regions.reserve(NumRegions);
  for (unsigned I = 0; I < NumRegions; ++I)
    Op->Regions.push_back(std::make_unique<Region>(Op));
  return Op;
}

void Operation::destroy() {
  assert(!ParentBlock && "destroying an operation still owned by a block");
  Regions.clear(); // Destroys nested blocks, which destroy nested ops.
  delete this;
}

Attribute Operation::getAttr(const std::string &AttrName) const {
  for (const NamedAttribute &Entry : Attributes)
    if (Entry.first == AttrName)
      return Entry.second;
  return Attribute();
}

void Operation::setAttr(const std::string &AttrName, Attribute Attr) {
  for (NamedAttribute &Entry : Attributes) {
    if (Entry.first == AttrName) {
      Entry.second = Attr;
      return;
    }
  }
  Attributes.emplace_back(AttrName, Attr);
}

void Operation::removeAttr(const std::string &AttrName) {
  for (auto It = Attributes.begin(); It != Attributes.end(); ++It) {
    if (It->first == AttrName) {
      Attributes.erase(It);
      return;
    }
  }
}

Operation *Operation::getParentOp() const {
  return ParentBlock ? ParentBlock->getParentOp() : nullptr;
}

void Operation::erase() {
  removeFromParent();
  destroy();
}

void Operation::removeFromParent() {
  assert(ParentBlock && "operation has no parent block");
  ParentBlock->remove(this);
}

void Operation::moveBefore(Operation *Other) {
  assert(Other->ParentBlock && "destination op is not in a block");
  if (ParentBlock)
    removeFromParent();
  Other->ParentBlock->insert(Other->PositionInBlock, this);
}

void Operation::walk(const std::function<void(Operation *)> &Callback) {
  Callback(this);
  for (auto &R : Regions) {
    for (auto &B : R->getBlocks()) {
      // Copy the list to tolerate erasure during the walk.
      std::vector<Operation *> Ops(B->getOperations().begin(),
                                   B->getOperations().end());
      for (Operation *Op : Ops)
        Op->walk(Callback);
    }
  }
}

void Operation::replaceUsesOfWith(Value From, Value To) {
  walk([&](Operation *Op) {
    for (Value &Operand : Op->Operands)
      if (Operand == From)
        Operand = To;
  });
}

std::string Operation::str() const {
  std::ostringstream OS;
  print(OS);
  return OS.str();
}

void Operation::dump() const {
  std::string Text = str();
  Text.push_back('\n');
  std::fputs(Text.c_str(), stderr);
}
