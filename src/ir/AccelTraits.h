//===- AccelTraits.h - Accelerator trait data structures --------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain data structures behind the new AXI4MLIR trait attributes
/// (paper Sec. III-C): `opcode_map` entries/actions (Fig. 7 grammar),
/// `opcode_flow` trees (Fig. 8 grammar) and `dma_init_config`.
///
/// They live under ir/ because the core Attribute class carries them; the
/// textual grammars are parsed in parser/OpcodeParser.{h,cpp}. This mirrors
/// how upstream MLIR builds dialect attributes into the core context via
/// registration, collapsed here for simplicity.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_ACCELTRAITS_H
#define AXI4MLIR_IR_ACCELTRAITS_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace accel {

/// One action inside an opcode list (paper Fig. 7, `opcode_expr`).
struct OpcodeAction {
  enum class Kind {
    Send,        ///< send(argIdx): stream a tile of operand argIdx.
    SendLiteral, ///< send_literal(imm): stream a 32-bit literal (the opcode).
    SendDim,     ///< send_dim(argIdx, dim): stream a size of operand argIdx.
    SendIdx,     ///< send_idx(dim): stream the current loop index of `dim`.
    Recv         ///< recv(argIdx): read back a tile of operand argIdx.
  };

  Kind ActionKind = Kind::SendLiteral;
  /// Operand index for Send/SendDim/Recv (0 = A, 1 = B, 2 = C in matmul).
  int64_t ArgIndex = -1;
  /// Immediate value for SendLiteral.
  int64_t Literal = 0;
  /// Dimension index for SendDim/SendIdx.
  int64_t DimIndex = -1;

  static OpcodeAction send(int64_t ArgIndex) {
    OpcodeAction Action;
    Action.ActionKind = Kind::Send;
    Action.ArgIndex = ArgIndex;
    return Action;
  }
  static OpcodeAction sendLiteral(int64_t Literal) {
    OpcodeAction Action;
    Action.ActionKind = Kind::SendLiteral;
    Action.Literal = Literal;
    return Action;
  }
  static OpcodeAction sendDim(int64_t ArgIndex, int64_t DimIndex) {
    OpcodeAction Action;
    Action.ActionKind = Kind::SendDim;
    Action.ArgIndex = ArgIndex;
    Action.DimIndex = DimIndex;
    return Action;
  }
  static OpcodeAction sendIdx(int64_t DimIndex) {
    OpcodeAction Action;
    Action.ActionKind = Kind::SendIdx;
    Action.DimIndex = DimIndex;
    return Action;
  }
  static OpcodeAction recv(int64_t ArgIndex) {
    OpcodeAction Action;
    Action.ActionKind = Kind::Recv;
    Action.ArgIndex = ArgIndex;
    return Action;
  }

  bool operator==(const OpcodeAction &Other) const {
    return ActionKind == Other.ActionKind && ArgIndex == Other.ArgIndex &&
           Literal == Other.Literal && DimIndex == Other.DimIndex;
  }
};

/// A named opcode: identifier plus its ordered action list (Fig. 7,
/// `opcode_entry`). E.g. `sA = [send_literal(0x22), send(0)]`.
struct OpcodeEntry {
  std::string Name;
  std::vector<OpcodeAction> Actions;

  bool operator==(const OpcodeEntry &Other) const {
    return Name == Other.Name && Actions == Other.Actions;
  }
};

/// The full opcode dictionary (Fig. 7, `opcode_dict`).
struct OpcodeMapData {
  std::vector<OpcodeEntry> Entries;

  const OpcodeEntry *lookup(const std::string &Name) const {
    for (const OpcodeEntry &Entry : Entries)
      if (Entry.Name == Name)
        return &Entry;
    return nullptr;
  }

  bool operator==(const OpcodeMapData &Other) const {
    return Entries == Other.Entries;
  }
};

/// A node of an opcode_flow tree (Fig. 8). Each scope holds an ordered list
/// of items; an item is either an opcode token or a nested scope. Nested
/// scopes are proxies for deeper loop nests (paper Sec. III-C,
/// "the set of parentheses is understood as a proxy to specify multiple
/// scopes for sequential or nested for loops").
struct FlowItem;

struct FlowScope {
  std::vector<FlowItem> Items;

  bool operator==(const FlowScope &Other) const;

  /// Depth of the deepest nested scope (a flat flow has depth 1).
  unsigned depth() const;
};

struct FlowItem {
  /// Non-empty for a token item.
  std::string Token;
  /// Non-null for a nested-scope item.
  std::shared_ptr<FlowScope> Scope;

  bool isToken() const { return !Token.empty(); }
  bool isScope() const { return Scope != nullptr; }

  bool operator==(const FlowItem &Other) const {
    if (Token != Other.Token)
      return false;
    if ((Scope == nullptr) != (Other.Scope == nullptr))
      return false;
    return !Scope || *Scope == *Other.Scope;
  }
};

inline bool FlowScope::operator==(const FlowScope &Other) const {
  return Items == Other.Items;
}

inline unsigned FlowScope::depth() const {
  unsigned MaxChild = 0;
  for (const FlowItem &Item : Items)
    if (Item.isScope())
      MaxChild = std::max(MaxChild, Item.Scope->depth());
  return 1 + MaxChild;
}

/// The opcode_flow attribute payload: the root scope of the flow tree.
struct OpcodeFlowData {
  FlowScope Root;

  bool operator==(const OpcodeFlowData &Other) const {
    return Root == Other.Root;
  }

  /// All token names in pre-order, for validation against the opcode map.
  std::vector<std::string> allTokens() const {
    std::vector<std::string> Tokens;
    collectTokens(Root, Tokens);
    return Tokens;
  }

private:
  static void collectTokens(const FlowScope &Scope,
                            std::vector<std::string> &Tokens) {
    for (const FlowItem &Item : Scope.Items) {
      if (Item.isToken())
        Tokens.push_back(Item.Token);
      else if (Item.Scope)
        collectTokens(*Item.Scope, Tokens);
    }
  }
};

/// The dma_init_config trait (paper Fig. 6a L2-L4).
struct DmaInitConfig {
  int64_t DmaId = 0;
  int64_t InputAddress = 0;
  int64_t InputBufferSize = 0;
  int64_t OutputAddress = 0;
  int64_t OutputBufferSize = 0;

  bool operator==(const DmaInitConfig &Other) const {
    return DmaId == Other.DmaId && InputAddress == Other.InputAddress &&
           InputBufferSize == Other.InputBufferSize &&
           OutputAddress == Other.OutputAddress &&
           OutputBufferSize == Other.OutputBufferSize;
  }
};

} // namespace accel
} // namespace axi4mlir

#endif // AXI4MLIR_IR_ACCELTRAITS_H
