//===- AffineMap.h - Multi-result affine maps -------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AffineMap mirrors mlir::AffineMap: a list of affine expressions over a
/// fixed number of dimensions/symbols. Used for `linalg.generic`
/// indexing_maps, the `permutation_map` trait (loop-order control for
/// stationary dataflows) and the `accel_dim` trait (accelerator tile sizes,
/// expressed as a constant map as in paper Fig. 6a L9).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_AFFINEMAP_H
#define AXI4MLIR_IR_AFFINEMAP_H

#include "ir/AffineExpr.h"

#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace axi4mlir {

namespace detail {
struct AffineMapStorage;
} // namespace detail

/// A value-semantic handle to an immutable affine map
/// `(d0, ..., d{n-1})[s0, ...] -> (expr0, ..., expr{m-1})`.
class AffineMap {
public:
  AffineMap() = default;

  static AffineMap get(unsigned NumDims, unsigned NumSymbols,
                       std::vector<AffineExpr> Results);
  /// The identity map (d0, ..., d{n-1}) -> (d0, ..., d{n-1}).
  static AffineMap getMultiDimIdentity(unsigned NumDims);
  /// A permutation map, e.g. {0,2,1} gives (d0,d1,d2) -> (d0,d2,d1).
  static AffineMap getPermutation(const std::vector<unsigned> &Permutation);
  /// A constant map (d0,...,d{n-1}) -> (c0,...,c{m-1}) as used by accel_dim.
  static AffineMap getConstant(unsigned NumDims,
                               const std::vector<int64_t> &Values);
  /// A projection map selecting the given dim positions, e.g. for matmul's
  /// A operand: select({0,2}, 3) = (m,n,k) -> (m,k).
  static AffineMap getSelect(const std::vector<unsigned> &Positions,
                             unsigned NumDims);

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const AffineMap &Other) const;
  bool operator!=(const AffineMap &Other) const { return !(*this == Other); }

  unsigned getNumDims() const;
  unsigned getNumSymbols() const;
  unsigned getNumResults() const;
  AffineExpr getResult(unsigned Index) const;
  const std::vector<AffineExpr> &getResults() const;

  /// True if the map is a (full) permutation of its dimensions.
  bool isPermutation() const;
  /// True if every result is a plain dimension (projection, no arithmetic).
  bool isProjectedPermutation() const;

  /// Evaluates all results for the given dim/symbol values.
  std::vector<int64_t> eval(const std::vector<int64_t> &Dims,
                            const std::vector<int64_t> &Symbols = {}) const;

  /// Set of dimension positions referenced by result \p Index.
  std::set<unsigned> getResultDimPositions(unsigned Index) const;
  /// Set of dimension positions referenced by any result.
  std::set<unsigned> getAllDimPositions() const;

  void print(std::ostream &OS) const;
  std::string str() const;

private:
  explicit AffineMap(std::shared_ptr<const detail::AffineMapStorage> Impl)
      : Impl(std::move(Impl)) {}

  std::shared_ptr<const detail::AffineMapStorage> Impl;
};

inline std::ostream &operator<<(std::ostream &OS, const AffineMap &Map) {
  Map.print(OS);
  return OS;
}

} // namespace axi4mlir

#endif // AXI4MLIR_IR_AFFINEMAP_H
