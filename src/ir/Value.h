//===- Value.h - SSA value handles ------------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value is a handle to an SSA value: either an operation result or a block
/// argument (e.g. an scf.for induction variable). Storage is owned by the
/// defining Operation or Block.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_IR_VALUE_H
#define AXI4MLIR_IR_VALUE_H

#include "ir/Types.h"

#include <cstdint>

namespace axi4mlir {

class Operation;
class Block;

namespace detail {
/// Backing storage for one SSA value.
struct ValueImpl {
  Type Ty;
  /// Non-null for op results.
  Operation *DefiningOp = nullptr;
  /// Non-null for block arguments.
  Block *OwnerBlock = nullptr;
  /// Result index or argument index.
  unsigned Index = 0;
};
} // namespace detail

/// A lightweight, copyable SSA value handle. Identity compares the
/// underlying storage pointer.
class Value {
public:
  Value() = default;
  explicit Value(detail::ValueImpl *Impl) : Impl(Impl) {}

  explicit operator bool() const { return Impl != nullptr; }
  bool operator==(const Value &Other) const { return Impl == Other.Impl; }
  bool operator!=(const Value &Other) const { return Impl != Other.Impl; }
  bool operator<(const Value &Other) const { return Impl < Other.Impl; }

  Type getType() const { return Impl->Ty; }

  /// The operation defining this value, or nullptr for block arguments.
  Operation *getDefiningOp() const { return Impl ? Impl->DefiningOp : nullptr; }
  bool isBlockArgument() const { return Impl && Impl->OwnerBlock != nullptr; }
  Block *getOwnerBlock() const { return Impl ? Impl->OwnerBlock : nullptr; }
  unsigned getIndex() const { return Impl->Index; }

  detail::ValueImpl *getImpl() const { return Impl; }

private:
  detail::ValueImpl *Impl = nullptr;
};

} // namespace axi4mlir

#endif // AXI4MLIR_IR_VALUE_H
