//===- MatMulAccelerator.cpp - Tile MatMul engine implementation ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/MatMulAccelerator.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

AcceleratorModel::~AcceleratorModel() = default;

void AcceleratorModel::reset() {
  OutputFifo.clear();
  PendingComputeCycles = 0;
  ErrorFlag = false;
  ErrorText.clear();
}

std::vector<uint32_t> AcceleratorModel::drainOutput(size_t MaxWords) {
  std::vector<uint32_t> Result;
  size_t Count = std::min(MaxWords, OutputFifo.size());
  Result.reserve(Count);
  for (size_t I = 0; I < Count; ++I) {
    Result.push_back(OutputFifo.front());
    OutputFifo.pop_front();
  }
  return Result;
}

MatMulAccelerator::MatMulAccelerator(Version Ver, int64_t Size, ElemKind Kind,
                                     const SoCParams &Params)
    : Ver(Ver), BaseSize(Size), Kind(Kind), Params(Params), TileM(Size),
      TileN(Size), TileK(Size) {
  // v4's internal memories allow rectangular tiles up to 128x the default
  // square-tile footprint per operand (a v4_16 fits e.g. 32x16x64,
  // paper Sec. IV-B "flex size").
  BufferCapacityWords =
      Ver == Version::V4 ? Size * Size * 16 : Size * Size;
  reset();
}

std::string MatMulAccelerator::getName() const {
  std::string Name = "matmul_v";
  switch (Ver) {
  case Version::V1:
    Name += "1";
    break;
  case Version::V2:
    Name += "2";
    break;
  case Version::V3:
    Name += "3";
    break;
  case Version::V4:
    Name += "4";
    break;
  }
  return Name + "_" + std::to_string(BaseSize);
}

void MatMulAccelerator::reset() {
  AcceleratorModel::reset();
  TileM = TileN = TileK = BaseSize;
  BufA.assign(static_cast<size_t>(TileM * TileK), 0);
  BufB.assign(static_cast<size_t>(TileK * TileN), 0);
  AccC.assign(static_cast<size_t>(TileM * TileN), 0.0);
  St = State::Idle;
  Burst.clear();
  BurstExpected = 0;
  TilesComputed = 0;
}

bool MatMulAccelerator::supportsOpcode(uint32_t Opcode) const {
  switch (Opcode) {
  case MM_RESET:
    return true;
  case MM_SASBCCRC:
    return Ver == Version::V1;
  case MM_SA:
  case MM_SB:
    return Ver != Version::V1;
  case MM_CC_RC:
  case MM_SB_CC_RC:
  case MM_SA_CC_RC:
    return Ver == Version::V2 || Ver == Version::V3 || Ver == Version::V4;
  case MM_CC:
  case MM_RC:
    return Ver == Version::V3 || Ver == Version::V4;
  case MM_CFG:
    return Ver == Version::V4;
  default:
    return false;
  }
}

void MatMulAccelerator::consumeWord(uint32_t Word) {
  if (ErrorFlag)
    return;
  switch (St) {
  case State::Idle:
    startOpcode(Word);
    return;
  case State::ReadCfg:
  case State::ReadA:
  case State::ReadB:
  case State::ReadAThenB:
    Burst.push_back(Word);
    if (Burst.size() == BurstExpected)
      finishBurst();
    return;
  }
}

void MatMulAccelerator::startOpcode(uint32_t Opcode) {
  if (!supportsOpcode(Opcode)) {
    signalError(getName() + ": unsupported opcode 0x" +
                std::to_string(Opcode));
    return;
  }
  CurrentOpcode = Opcode;
  Burst.clear();
  switch (Opcode) {
  case MM_RESET: {
    // Clear data but keep the error state machinery.
    int64_t M = TileM, N = TileN, K = TileK;
    (void)M;
    (void)N;
    (void)K;
    BufA.assign(BufA.size(), 0);
    BufB.assign(BufB.size(), 0);
    AccC.assign(AccC.size(), 0.0);
    St = State::Idle;
    return;
  }
  case MM_CFG:
    St = State::ReadCfg;
    BurstExpected = 3; // tM, tK, tN.
    return;
  case MM_SA:
  case MM_SA_CC_RC:
    St = State::ReadA;
    BurstExpected = static_cast<size_t>(TileM * TileK);
    return;
  case MM_SB:
  case MM_SB_CC_RC:
    St = State::ReadB;
    BurstExpected = static_cast<size_t>(TileK * TileN);
    return;
  case MM_SASBCCRC:
    St = State::ReadAThenB;
    BurstExpected = static_cast<size_t>(TileM * TileK + TileK * TileN);
    return;
  case MM_CC:
    compute();
    St = State::Idle;
    return;
  case MM_CC_RC:
    compute();
    emitC();
    St = State::Idle;
    return;
  case MM_RC:
    emitC();
    St = State::Idle;
    return;
  default:
    signalError(getName() + ": unhandled opcode");
    return;
  }
}

void MatMulAccelerator::finishBurst() {
  switch (St) {
  case State::ReadCfg: {
    int64_t NewM = static_cast<int32_t>(Burst[0]);
    int64_t NewK = static_cast<int32_t>(Burst[1]);
    int64_t NewN = static_cast<int32_t>(Burst[2]);
    if (NewM <= 0 || NewK <= 0 || NewN <= 0 ||
        NewM * NewK > BufferCapacityWords ||
        NewK * NewN > BufferCapacityWords ||
        NewM * NewN > BufferCapacityWords) {
      signalError(getName() + ": cfg tile does not fit internal buffers");
      return;
    }
    TileM = NewM;
    TileK = NewK;
    TileN = NewN;
    BufA.assign(static_cast<size_t>(TileM * TileK), 0);
    BufB.assign(static_cast<size_t>(TileK * TileN), 0);
    AccC.assign(static_cast<size_t>(TileM * TileN), 0.0);
    break;
  }
  case State::ReadA:
    BufA.assign(Burst.begin(), Burst.end());
    if (CurrentOpcode == MM_SA_CC_RC) {
      compute();
      emitC();
    }
    break;
  case State::ReadB:
    BufB.assign(Burst.begin(), Burst.end());
    if (CurrentOpcode == MM_SB_CC_RC) {
      compute();
      emitC();
    }
    break;
  case State::ReadAThenB:
    BufA.assign(Burst.begin(), Burst.begin() + TileM * TileK);
    BufB.assign(Burst.begin() + TileM * TileK, Burst.end());
    compute();
    emitC();
    break;
  case State::Idle:
    assert(false && "finishBurst in Idle state");
    break;
  }
  Burst.clear();
  St = State::Idle;
}

void MatMulAccelerator::compute() {
  // C[m][n] += sum_k A[m][k] * B[k][n], elementwise on the configured tile.
  for (int64_t M = 0; M < TileM; ++M) {
    for (int64_t N = 0; N < TileN; ++N) {
      double Sum = 0;
      for (int64_t K = 0; K < TileK; ++K) {
        uint32_t AWord = BufA[static_cast<size_t>(M * TileK + K)];
        uint32_t BWord = BufB[static_cast<size_t>(K * TileN + N)];
        if (Kind == ElemKind::F32)
          Sum += static_cast<double>(wordToFloat(AWord)) *
                 static_cast<double>(wordToFloat(BWord));
        else
          Sum += static_cast<double>(static_cast<int32_t>(AWord)) *
                 static_cast<double>(static_cast<int32_t>(BWord));
      }
      AccC[static_cast<size_t>(M * TileN + N)] += Sum;
    }
  }
  // Table I throughput: 2*M*N*K OPs at OPsPerCycle.
  double Ops = 2.0 * static_cast<double>(TileM) *
               static_cast<double>(TileN) * static_cast<double>(TileK);
  chargeCompute(Ops / matmulOpsPerCycle(BaseSize));
  ++TilesComputed;
}

void MatMulAccelerator::emitC() {
  for (int64_t M = 0; M < TileM; ++M) {
    for (int64_t N = 0; N < TileN; ++N) {
      double Value = AccC[static_cast<size_t>(M * TileN + N)];
      if (Kind == ElemKind::F32)
        pushOutput(floatToWord(static_cast<float>(Value)));
      else
        pushOutput(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int64_t>(Value))));
    }
  }
  // Delivering C clears the accumulator (partial results are accumulated
  // host-side via accel.recv {mode="accumulate"}).
  AccC.assign(AccC.size(), 0.0);
}
