//===- MatMulAccelerator.cpp - Tile MatMul engine implementation ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/MatMulAccelerator.h"

#include <algorithm>
#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

AcceleratorModel::~AcceleratorModel() = default;

void AcceleratorModel::consumeBurst(const uint32_t *Words, size_t Count) {
  for (size_t I = 0; I < Count; ++I)
    consumeWord(Words[I]);
}

void AcceleratorModel::reset() {
  OutputFifo.clear();
  OutputHead = 0;
  PendingComputeCycles = 0;
  ErrorFlag = false;
  ErrorText.clear();
  LastErrorText.clear();
  ErrorCount = 0;
  // Pending fault state clears; the attached injector (and its logical
  // cursors) survives, so a recovery reset does not forget the schedule.
  TransientPending = false;
  TransientDropped = 0;
  TransientText.clear();
  PendingStallSteps = 0;
}

std::unique_ptr<AcceleratorModel> AcceleratorModel::cloneFresh() const {
  return nullptr;
}

bool AcceleratorModel::opcodeFaultRefusal(uint32_t Opcode) {
  if (!kFaultHooksEnabled || !Injector)
    return false;
  const FaultEvent *Event = Injector->onOpcode();
  if (!Event)
    return false;
  if (Event->Kind == FaultKind::Stall) {
    PendingStallSteps += Event->Steps;
    return false;
  }
  TransientPending = true;
  TransientDropped = 1; // the refused opcode word itself
  TransientText = getName() + ": " + describeFault(*Event) +
                  " refused opcode " + formatOpcode(Opcode);
  return true;
}

std::vector<uint32_t> AcceleratorModel::drainOutput(size_t MaxWords) {
  size_t Count = std::min(MaxWords, outputAvailable());
  std::vector<uint32_t> Result(OutputFifo.begin() + OutputHead,
                               OutputFifo.begin() + OutputHead + Count);
  OutputHead += Count;
  recycleDrained();
  return Result;
}

size_t AcceleratorModel::drainOutputInto(uint32_t *Dst, size_t MaxWords) {
  size_t Count = std::min(MaxWords, outputAvailable());
  std::memcpy(Dst, OutputFifo.data() + OutputHead, Count * sizeof(uint32_t));
  OutputHead += Count;
  recycleDrained();
  return Count;
}

std::string axi4mlir::sim::formatOpcode(uint32_t Opcode) {
  static const char Digits[] = "0123456789abcdef";
  std::string Hex;
  do {
    Hex.insert(Hex.begin(), Digits[Opcode & 0xF]);
    Opcode >>= 4;
  } while (Opcode != 0);
  return "0x" + Hex;
}

MatMulAccelerator::MatMulAccelerator(Version Ver, int64_t Size, ElemKind Kind,
                                     const SoCParams &Params)
    : Ver(Ver), BaseSize(Size), Kind(Kind), Params(Params), TileM(Size),
      TileN(Size), TileK(Size) {
  // v4's internal memories allow rectangular tiles up to 128x the default
  // square-tile footprint per operand (a v4_16 fits e.g. 32x16x64,
  // paper Sec. IV-B "flex size").
  BufferCapacityWords = bufferCapacityWordsFor(Ver, Size);
  reset();
}

int64_t MatMulAccelerator::bufferCapacityWordsFor(Version Ver, int64_t Size) {
  return Ver == Version::V4 ? Size * Size * 16 : Size * Size;
}

int64_t MatMulAccelerator::burstWordsFor(uint32_t Opcode, int64_t TileM,
                                         int64_t TileK, int64_t TileN) {
  switch (Opcode) {
  case MM_CFG:
    return 3; // tM, tK, tN.
  case MM_SA:
  case MM_SA_CC_RC:
    return TileM * TileK;
  case MM_SB:
  case MM_SB_CC_RC:
    return TileK * TileN;
  case MM_SASBCCRC:
    return TileM * TileK + TileK * TileN;
  default:
    return 0; // immediate: reset / compute / emit.
  }
}

bool MatMulAccelerator::opcodeEmitsOutput(uint32_t Opcode) {
  switch (Opcode) {
  case MM_SASBCCRC:
  case MM_SA_CC_RC:
  case MM_SB_CC_RC:
  case MM_CC_RC:
  case MM_RC:
    return true;
  default:
    return false;
  }
}

std::string MatMulAccelerator::getName() const {
  std::string Name = "matmul_v";
  switch (Ver) {
  case Version::V1:
    Name += "1";
    break;
  case Version::V2:
    Name += "2";
    break;
  case Version::V3:
    Name += "3";
    break;
  case Version::V4:
    Name += "4";
    break;
  }
  return Name + "_" + std::to_string(BaseSize);
}

std::unique_ptr<AcceleratorModel> MatMulAccelerator::cloneFresh() const {
  return std::make_unique<MatMulAccelerator>(Ver, BaseSize, Kind, Params);
}

void MatMulAccelerator::reset() {
  AcceleratorModel::reset();
  TileM = TileN = TileK = BaseSize;
  BufA.assign(static_cast<size_t>(TileM * TileK), 0);
  BufB.assign(static_cast<size_t>(TileK * TileN), 0);
  AccC.assign(static_cast<size_t>(TileM * TileN), 0.0);
  St = State::Idle;
  BurstFill = 0;
  BurstExpected = 0;
  TilesComputed = 0;
}

bool MatMulAccelerator::versionSupportsOpcode(Version Ver, uint32_t Opcode) {
  switch (Opcode) {
  case MM_RESET:
    return true;
  case MM_SASBCCRC:
    return Ver == Version::V1;
  case MM_SA:
  case MM_SB:
    return Ver != Version::V1;
  case MM_CC_RC:
  case MM_SB_CC_RC:
  case MM_SA_CC_RC:
    return Ver == Version::V2 || Ver == Version::V3 || Ver == Version::V4;
  case MM_CC:
  case MM_RC:
    return Ver == Version::V3 || Ver == Version::V4;
  case MM_CFG:
    return Ver == Version::V4;
  default:
    return false;
  }
}

bool MatMulAccelerator::supportsOpcode(uint32_t Opcode) const {
  return versionSupportsOpcode(Ver, Opcode);
}

void MatMulAccelerator::consumeWord(uint32_t Word) {
  if (droppingInput(1))
    return;
  if (St == State::Idle) {
    if (opcodeFaultRefusal(Word))
      return;
    startOpcode(Word);
    return;
  }
  copyIn(&Word, 1);
  if (++BurstFill == BurstExpected)
    finishBurst();
}

void MatMulAccelerator::consumeBurst(const uint32_t *Words, size_t Count) {
  while (Count > 0) {
    if (droppingInput(Count))
      return; // drop the rest, like the word path
    if (St == State::Idle) {
      if (opcodeFaultRefusal(*Words)) {
        ++Words; // refused opcode: already counted as dropped
        --Count;
        continue;
      }
      startOpcode(*Words++);
      --Count;
      continue;
    }
    // Absorb as much of the pending data burst as this transfer holds in
    // one shot: no per-word FSM step, no staging copy.
    size_t Take = std::min(Count, BurstExpected - BurstFill);
    copyIn(Words, Take);
    Words += Take;
    Count -= Take;
    if ((BurstFill += Take) == BurstExpected)
      finishBurst();
  }
}

void MatMulAccelerator::copyIn(const uint32_t *Words, size_t Count) {
  size_t Pos = BurstFill;
  switch (St) {
  case State::ReadCfg:
    std::memcpy(CfgWords + Pos, Words, Count * sizeof(uint32_t));
    return;
  case State::ReadA:
    std::memcpy(BufA.data() + Pos, Words, Count * sizeof(uint32_t));
    return;
  case State::ReadB:
    std::memcpy(BufB.data() + Pos, Words, Count * sizeof(uint32_t));
    return;
  case State::ReadAThenB: {
    // The v1 combined burst: A's words first, B's words after.
    size_t ASize = static_cast<size_t>(TileM * TileK);
    if (Pos < ASize) {
      size_t ToA = std::min(Count, ASize - Pos);
      std::memcpy(BufA.data() + Pos, Words, ToA * sizeof(uint32_t));
      Words += ToA;
      Count -= ToA;
      Pos = ASize;
    }
    if (Count > 0)
      std::memcpy(BufB.data() + (Pos - ASize), Words,
                  Count * sizeof(uint32_t));
    return;
  }
  case State::Idle:
    // Out-of-protocol use; diagnosable in every build type (was a
    // Release-stripped assert).
    signalError(getName() + ": copyIn in Idle state (protocol violation)");
    return;
  }
}

void MatMulAccelerator::startOpcode(uint32_t Opcode) {
  if (!supportsOpcode(Opcode)) {
    signalError(getName() + ": unsupported opcode " + formatOpcode(Opcode));
    return;
  }
  CurrentOpcode = Opcode;
  BurstFill = 0;
  switch (Opcode) {
  case MM_RESET:
    // Clear data but keep the error state machinery.
    BufA.assign(BufA.size(), 0);
    BufB.assign(BufB.size(), 0);
    AccC.assign(AccC.size(), 0.0);
    St = State::Idle;
    return;
  case MM_CFG:
    St = State::ReadCfg;
    BurstExpected = static_cast<size_t>(burstWordsFor(Opcode, TileM, TileK, TileN));
    return;
  case MM_SA:
  case MM_SA_CC_RC:
    St = State::ReadA;
    BurstExpected = static_cast<size_t>(burstWordsFor(Opcode, TileM, TileK, TileN));
    return;
  case MM_SB:
  case MM_SB_CC_RC:
    St = State::ReadB;
    BurstExpected = static_cast<size_t>(burstWordsFor(Opcode, TileM, TileK, TileN));
    return;
  case MM_SASBCCRC:
    St = State::ReadAThenB;
    BurstExpected = static_cast<size_t>(burstWordsFor(Opcode, TileM, TileK, TileN));
    return;
  case MM_CC:
    compute();
    St = State::Idle;
    return;
  case MM_CC_RC:
    compute();
    emitC();
    St = State::Idle;
    return;
  case MM_RC:
    emitC();
    St = State::Idle;
    return;
  default:
    signalError(getName() + ": unhandled opcode");
    return;
  }
}

void MatMulAccelerator::finishBurst() {
  switch (St) {
  case State::ReadCfg: {
    int64_t NewM = static_cast<int32_t>(CfgWords[0]);
    int64_t NewK = static_cast<int32_t>(CfgWords[1]);
    int64_t NewN = static_cast<int32_t>(CfgWords[2]);
    if (NewM <= 0 || NewK <= 0 || NewN <= 0 ||
        NewM * NewK > BufferCapacityWords ||
        NewK * NewN > BufferCapacityWords ||
        NewM * NewN > BufferCapacityWords) {
      signalError(getName() + ": cfg tile does not fit internal buffers");
      return;
    }
    TileM = NewM;
    TileK = NewK;
    TileN = NewN;
    BufA.assign(static_cast<size_t>(TileM * TileK), 0);
    BufB.assign(static_cast<size_t>(TileK * TileN), 0);
    AccC.assign(static_cast<size_t>(TileM * TileN), 0.0);
    break;
  }
  case State::ReadA:
    if (CurrentOpcode == MM_SA_CC_RC) {
      compute();
      emitC();
    }
    break;
  case State::ReadB:
    if (CurrentOpcode == MM_SB_CC_RC) {
      compute();
      emitC();
    }
    break;
  case State::ReadAThenB:
    compute();
    emitC();
    break;
  case State::Idle:
    signalError(getName() +
                ": finishBurst in Idle state (protocol violation)");
    break;
  }
  BurstFill = 0;
  St = State::Idle;
}

template <ElemKind K> void MatMulAccelerator::computeTile() {
  // C[m][n] += sum_k A[m][k] * B[k][n], elementwise on the configured
  // tile, in M-K-N order over a per-row accumulator so the inner loop
  // sweeps both B and the accumulator contiguously (SIMD-friendly).
  //
  // Each output element still receives its products in k order with one
  // final add into AccC — the identical FP operation sequence as the
  // per-element reference loop, so results stay bit-identical; the
  // interleaving across N merely lets the compiler vectorize the inner
  // sweep (contiguous loads, element-type conversion hoisted per kind
  // instead of branch-tested per MAC).
  const uint32_t *A = BufA.data();
  const uint32_t *B = BufB.data();
  double *C = AccC.data();
  std::vector<double> &Row = RowAcc;
  Row.assign(static_cast<size_t>(TileN), 0.0);
  for (int64_t M = 0; M < TileM; ++M) {
    const uint32_t *ARow = A + M * TileK;
    for (int64_t Kk = 0; Kk < TileK; ++Kk) {
      const uint32_t *BRow = B + Kk * TileN;
      double AVal = K == ElemKind::F32
                        ? static_cast<double>(wordToFloat(ARow[Kk]))
                        : static_cast<double>(static_cast<int32_t>(ARow[Kk]));
      if constexpr (K == ElemKind::F32) {
        for (int64_t N = 0; N < TileN; ++N)
          Row[N] += AVal * static_cast<double>(wordToFloat(BRow[N]));
      } else {
        for (int64_t N = 0; N < TileN; ++N)
          Row[N] +=
              AVal * static_cast<double>(static_cast<int32_t>(BRow[N]));
      }
    }
    for (int64_t N = 0; N < TileN; ++N) {
      C[M * TileN + N] += Row[N];
      Row[N] = 0.0;
    }
  }
}

void MatMulAccelerator::compute() {
  if (Kind == ElemKind::F32)
    computeTile<ElemKind::F32>();
  else
    computeTile<ElemKind::I32>();
  // Table I throughput: 2*M*N*K OPs at OPsPerCycle.
  double Ops = 2.0 * static_cast<double>(TileM) *
               static_cast<double>(TileN) * static_cast<double>(TileK);
  chargeCompute(Ops / matmulOpsPerCycle(BaseSize));
  ++TilesComputed;
}

template <ElemKind K> void MatMulAccelerator::emitCImpl() {
  size_t Elements = static_cast<size_t>(TileM * TileN);
  reserveOutput(Elements);
  for (size_t I = 0; I < Elements; ++I)
    pushOutput(valueToWord<K>(AccC[I]));
}

void MatMulAccelerator::emitC() {
  if (Kind == ElemKind::F32)
    emitCImpl<ElemKind::F32>();
  else
    emitCImpl<ElemKind::I32>();
  // Delivering C clears the accumulator (partial results are accumulated
  // host-side via accel.recv {mode="accumulate"}).
  AccC.assign(AccC.size(), 0.0);
}

FailureOr<MatMulAccelerator::Version>
MatMulAccelerator::versionFromName(const std::string &Name,
                                   std::string &Error) {
  int64_t Found = -1;
  for (size_t Pos = Name.find("_v"); Pos != std::string::npos;
       Pos = Name.find("_v", Pos + 1)) {
    size_t DigitsStart = Pos + 2;
    size_t DigitsEnd = DigitsStart;
    while (DigitsEnd < Name.size() && Name[DigitsEnd] >= '0' &&
           Name[DigitsEnd] <= '9')
      ++DigitsEnd;
    if (DigitsEnd == DigitsStart)
      continue; // `_v` not followed by digits.
    if (DigitsEnd < Name.size() && Name[DigitsEnd] != '_')
      continue; // Not an anchored token (e.g. `_v4x`).
    if (DigitsEnd - DigitsStart > 9) {
      Error = "version token '" + Name.substr(Pos + 1, DigitsEnd - Pos - 1) +
              "' in accelerator name '" + Name + "' is out of range";
      return failure();
    }
    int64_t Version = 0;
    for (size_t I = DigitsStart; I < DigitsEnd; ++I)
      Version = Version * 10 + (Name[I] - '0');
    if (Found >= 0 && Found != Version) {
      Error = "accelerator name '" + Name +
              "' carries conflicting _vN version tokens";
      return failure();
    }
    Found = Version;
  }
  if (Found < 0) {
    Error = "cannot infer the engine version from accelerator name '" +
            Name + "' (expected an anchored _vN token, e.g. 'matmul_v3_16')";
    return failure();
  }
  switch (Found) {
  case 1:
    return Version::V1;
  case 2:
    return Version::V2;
  case 3:
    return Version::V3;
  case 4:
    return Version::V4;
  default:
    Error = "accelerator name '" + Name + "' requests unsupported version v" +
            std::to_string(Found) + " (supported: v1-v4)";
    return failure();
  }
}
