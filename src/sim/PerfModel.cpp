//===- PerfModel.cpp - Host performance model implementation --------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/PerfModel.h"

#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::sim;

std::string PerfReport::summary() const {
  std::ostringstream OS;
  OS << "task-clock " << TaskClockMs << " ms | instructions " << Instructions
     << " | branches " << BranchInstructions << " | cache-refs "
     << CacheReferences << " | cache-misses " << CacheMisses
     << " | dma-transfers " << DmaTransfers << " (" << DmaBytesMoved
     << " B)";
  // Recovery telemetry only appears on faulted runs: fault-free summaries
  // stay byte-identical to the pre-fault-injection format.
  if (FaultsInjected > 0) {
    OS << " | faults " << FaultsInjected << " (retries " << RecoveryRetries
       << ", failovers " << FailoverEvents << ", cpu-fallbacks "
       << CpuFallbackEvents << ")";
  }
  // Plan-cache telemetry likewise only appears once a cache has been
  // consulted, keeping legacy summaries byte-identical.
  if (PlanCacheHits + PlanCacheMisses > 0) {
    OS << " | plan-cache " << PlanCacheHits << "/"
       << (PlanCacheHits + PlanCacheMisses) << " hits (evictions "
       << PlanCacheEvictions << ")";
  }
  return OS.str();
}

void HostPerfModel::onMemcpy(uint64_t Dst, uint64_t Src, uint64_t Bytes) {
  uint64_t CopyInstructions =
      Params.MemcpySetupInstructions +
      (Bytes + Params.MemcpyBytesPerInstruction - 1) /
          Params.MemcpyBytesPerInstruction;
  Instructions += CopyInstructions;
  // A memcpy is almost branch-free: one loop branch per 64-byte chunk.
  uint64_t Branches = Bytes / 64 + 1;
  BranchInstructions += Branches;
  Instructions += Branches;
  HostCycles += static_cast<double>(CopyInstructions + Branches) *
                Params.CyclesPerInstruction;
  HostCycles += static_cast<double>(Cache.accessRange(Src, Bytes));
  HostCycles += static_cast<double>(Cache.accessRange(Dst, Bytes));
  Loads += Bytes / Params.MemcpyBytesPerInstruction;
  Stores += Bytes / Params.MemcpyBytesPerInstruction;
}

void HostPerfModel::onMemcpyRows(uint64_t Dst, uint64_t Src,
                                 uint64_t RowBytes, uint64_t Rows,
                                 uint64_t DstStrideBytes,
                                 uint64_t SrcStrideBytes) {
  if (Rows == 0)
    return;
  uint64_t CopyInstructions =
      Params.MemcpySetupInstructions +
      (RowBytes + Params.MemcpyBytesPerInstruction - 1) /
          Params.MemcpyBytesPerInstruction;
  uint64_t Branches = RowBytes / 64 + 1;
  Instructions += (CopyInstructions + Branches) * Rows;
  BranchInstructions += Branches * Rows;
  HostCycles += static_cast<double>((CopyInstructions + Branches) * Rows) *
                Params.CyclesPerInstruction;
  // The cache is stateful: preserve the per-row src-then-dst access order
  // of the unbatched path so miss counts stay bit-identical.
  for (uint64_t Row = 0; Row < Rows; ++Row) {
    HostCycles += static_cast<double>(
        Cache.accessRange(Src + Row * SrcStrideBytes, RowBytes));
    HostCycles += static_cast<double>(
        Cache.accessRange(Dst + Row * DstStrideBytes, RowBytes));
  }
  Loads += RowBytes / Params.MemcpyBytesPerInstruction * Rows;
  Stores += RowBytes / Params.MemcpyBytesPerInstruction * Rows;
}

PerfReport HostPerfModel::report() const {
  PerfReport Report;
  Report.Instructions = Instructions;
  Report.BranchInstructions = BranchInstructions;
  Report.Loads = Loads;
  Report.Stores = Stores;
  Report.L1DAccesses = Cache.getReferences();
  Report.CacheReferences = Cache.getL1Misses();
  Report.CacheMisses = Cache.getL2Misses();
  Report.HostCycles = HostCycles;
  Report.FabricCycles = FabricCycles;
  Report.DmaTransfers = DmaTransfers;
  Report.DmaBytesMoved = DmaBytesMoved;
  Report.FaultsInjected = FaultsInjected;
  Report.RecoveryRetries = RecoveryRetries;
  Report.RecoveryBackoffCycles = RecoveryBackoffCycles;
  Report.WatchdogPollCycles = WatchdogPollCycles;
  Report.RecoveryReplayCycles = RecoveryReplayCycles;
  Report.FailoverEvents = FailoverEvents;
  Report.CpuFallbackEvents = CpuFallbackEvents;
  Report.CpuFallbackCycles = CpuFallbackCycles;
  Report.PlanCacheHits = PlanCacheHits;
  Report.PlanCacheMisses = PlanCacheMisses;
  Report.PlanCacheEvictions = PlanCacheEvictions;
  // Recovery work extends the modeled wall clock: backoff, polling and
  // CPU-fallback compute run on the host; replayed staging runs on the
  // fabric. All four are zero on fault-free runs, leaving TaskClockMs
  // bit-identical there.
  Report.TaskClockMs = Params.taskClockMs(
      HostCycles + RecoveryBackoffCycles + WatchdogPollCycles +
          CpuFallbackCycles,
      FabricCycles + RecoveryReplayCycles);
  return Report;
}

void HostPerfModel::reset() {
  Cache.reset();
  Instructions = 0;
  BranchInstructions = 0;
  Loads = 0;
  Stores = 0;
  HostCycles = 0;
  FabricCycles = 0;
  DmaTransfers = 0;
  DmaBytesMoved = 0;
}
