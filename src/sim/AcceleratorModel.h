//===- AcceleratorModel.h - Accelerator behavioural models ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The behavioural contract of the simulated AXI-Stream accelerators: a
/// word-level micro-ISA state machine fed by the DMA engine. This replaces
/// the paper's SECDA-TFLite-derived HLS accelerators on the PYNQ-Z2 fabric
/// (Table I) while preserving their externally visible behaviour: opcodes,
/// stream ordering, stationarity/reuse, buffer capacities and Table I
/// throughput.
///
/// Two ingest granularities are exposed. consumeWord() is the semantic
/// reference: one FSM step per 32-bit stream word. consumeBurst() is the
/// production datapath the DMA engine drives: whole AXI-Stream bursts
/// absorbed at line rate (data words memcpy'd straight into the internal
/// buffers, one FSM step per opcode instead of per word). Both must be
/// observationally identical — same output FIFO contents, same modeled
/// compute cycles, same error behaviour for the same stream, regardless of
/// how the stream is split into bursts. StreamEquivalenceTest enforces
/// this contract for every model.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_ACCELERATORMODEL_H
#define AXI4MLIR_SIM_ACCELERATORMODEL_H

#include "sim/AccelStatus.h"
#include "sim/CostModel.h"
#include "sim/FaultInjector.h"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace sim {

/// Element interpretation of the 32-bit stream words.
enum class ElemKind { I32, F32 };

/// Opcode literals of the micro-ISAs (the values the host streams ahead of
/// data bursts; matmul values follow paper Fig. 6a, conv values Fig. 15a).
namespace opcodes {
// MatMul family (v1..v4).
inline constexpr uint32_t MM_RESET = 0xFF;     ///< clear all buffers
inline constexpr uint32_t MM_SASBCCRC = 0x21;  ///< v1: A,B in; C out
inline constexpr uint32_t MM_SA = 0x22;        ///< load A tile
inline constexpr uint32_t MM_SB = 0x23;        ///< load B tile
inline constexpr uint32_t MM_RC = 0x24;        ///< emit C tile, clear C
inline constexpr uint32_t MM_SB_CC_RC = 0x25;  ///< B in; compute; C out
inline constexpr uint32_t MM_SA_CC_RC = 0x26;  ///< A in; compute; C out
inline constexpr uint32_t MM_CC_RC = 0x27;     ///< v2: compute; C out
inline constexpr uint32_t MM_CC = 0xF0;        ///< compute, accumulate C
inline constexpr uint32_t MM_CFG = 0x10;       ///< v4: set tM,tK,tN
// Conv family (paper Fig. 15a).
inline constexpr uint32_t CONV_SF = 1;      ///< load filter slice
inline constexpr uint32_t CONV_RO = 8;      ///< emit output slice
inline constexpr uint32_t CONV_SET_IC = 16; ///< next word: iC
inline constexpr uint32_t CONV_SET_FS = 32; ///< next word: fH (== fW)
inline constexpr uint32_t CONV_SICO = 70;   ///< input window in; compute
} // namespace opcodes

/// Base class of all accelerator behavioural models. The DMA engine feeds
/// whole bursts through consumeBurst() and collects results from the
/// output FIFO. Compute time is accumulated in fabric cycles and harvested
/// by the DMA engine via takeComputeCycles().
class AcceleratorModel {
public:
  virtual ~AcceleratorModel();

  /// Consumes one input-stream word (opcode or data). The word-at-a-time
  /// semantic reference.
  virtual void consumeWord(uint32_t Word) = 0;

  /// Consumes \p Count stream words as one burst. The default forwards
  /// word by word; models override it with a fast path that absorbs data
  /// bursts at memcpy speed. Words after a protocol error are dropped,
  /// exactly as consumeWord() drops them.
  virtual void consumeBurst(const uint32_t *Words, size_t Count);

  /// Human-readable model name for diagnostics ("matmul_v3_16", ...).
  virtual std::string getName() const = 0;

  /// Full reset (also clears the error flag and output FIFO).
  virtual void reset();

  /// Pops up to \p MaxWords words from the output FIFO.
  std::vector<uint32_t> drainOutput(size_t MaxWords);

  /// Pops up to \p MaxWords words from the output FIFO directly into
  /// \p Dst (no intermediate allocation). Returns the words copied.
  size_t drainOutputInto(uint32_t *Dst, size_t MaxWords);

  size_t outputAvailable() const { return OutputFifo.size() - OutputHead; }

  /// Compute cycles accumulated since the last call.
  double takeComputeCycles() {
    double Cycles = PendingComputeCycles;
    PendingComputeCycles = 0;
    return Cycles;
  }

  /// True after a protocol error (unknown opcode, buffer overflow). Tests
  /// assert this stays false.
  bool hadError() const { return ErrorFlag; }
  /// First error message of the run (the root cause).
  const std::string &errorMessage() const { return ErrorText; }
  /// Most recent error message (cascades are debuggable: first + last).
  const std::string &lastErrorMessage() const { return LastErrorText; }
  /// Monotone count of errors signalled since the last full reset.
  uint64_t errorCount() const { return ErrorCount; }

  /// Structured view of the model state: Fatal after a protocol error,
  /// Transient while a refused opcode awaits retry, Ok otherwise.
  AccelStatus status() const {
    if (ErrorFlag)
      return AccelStatus::Fatal;
    if (TransientPending)
      return AccelStatus::Transient;
    return AccelStatus::Ok;
  }

  /// Fault-injection hook (zero-cost when no injector is attached): the
  /// model consults the injector per opcode; the DMA engine harvests the
  /// resulting transient refusals and stall steps after each burst.
  void attachFaultInjector(FaultInjector *I) { Injector = I; }
  FaultInjector *faultInjector() const { return Injector; }

  /// True while the model refuses input after a transient-error fault.
  bool transientPending() const { return TransientPending; }
  const std::string &transientMessage() const { return TransientText; }
  /// Clears the transient refusal and returns how many stream words were
  /// dropped since it fired (including the refused opcode word) — exactly
  /// the suffix the DMA engine must re-send.
  size_t takeTransientDropped() {
    size_t Dropped = TransientDropped;
    TransientPending = false;
    TransientDropped = 0;
    return Dropped;
  }

  /// FSM stall steps accrued by injected stall faults since the last call.
  uint64_t takeStallSteps() {
    uint64_t Steps = PendingStallSteps;
    PendingStallSteps = 0;
    return Steps;
  }

  /// A fresh, fault-free instance of the same model (same geometry and
  /// element kind). The recovery layer uses it as the host-executed CPU
  /// fallback when retries are exhausted and no spare is attached.
  virtual std::unique_ptr<AcceleratorModel> cloneFresh() const;

protected:
  void pushOutput(uint32_t Word) { OutputFifo.push_back(Word); }
  void reserveOutput(size_t Words) {
    OutputFifo.reserve(OutputFifo.size() + Words);
  }
  void chargeCompute(double Cycles) { PendingComputeCycles += Cycles; }
  void signalError(const std::string &Message) {
    ErrorFlag = true;
    ++ErrorCount;
    if (ErrorText.empty())
      ErrorText = Message;
    LastErrorText = Message;
  }

  /// Consults the injector for the opcode about to start. Returns true if
  /// the opcode must be refused (transient-error fault): the model then
  /// stays in its current state and drops the rest of the stream until the
  /// DMA engine harvests the refusal — which makes the behaviour identical
  /// under word-at-a-time and burst delivery.
  bool opcodeFaultRefusal(uint32_t Opcode);

  /// True when the model is dropping input (sticky error or pending
  /// transient refusal); counts the dropped words so the engine knows the
  /// exact suffix to retry.
  bool droppingInput(size_t Count) {
    if (ErrorFlag)
      return true;
    if (kFaultHooksEnabled && TransientPending) {
      TransientDropped += Count;
      return true;
    }
    return false;
  }

  /// Output FIFO as a flat vector + head cursor (a deque paid a chunked
  /// indirection per word). Drained storage is recycled: freed outright
  /// once fully drained, compacted once the dead prefix dominates — so
  /// persistent partial drains cannot grow the FIFO without bound.
  void recycleDrained() {
    if (OutputHead == OutputFifo.size()) {
      OutputFifo.clear();
      OutputHead = 0;
    } else if (OutputHead >= 1024 && OutputHead >= OutputFifo.size() / 2) {
      OutputFifo.erase(OutputFifo.begin(),
                       OutputFifo.begin() +
                           static_cast<std::ptrdiff_t>(OutputHead));
      OutputHead = 0;
    }
  }

  std::vector<uint32_t> OutputFifo;
  size_t OutputHead = 0;
  double PendingComputeCycles = 0;
  bool ErrorFlag = false;
  std::string ErrorText;
  std::string LastErrorText;
  uint64_t ErrorCount = 0;
  // Fault-hook state. The injector pointer survives reset() (the recovery
  // layer resets the model without forgetting the schedule); the pending
  // refusal/stall state does not.
  FaultInjector *Injector = nullptr;
  bool TransientPending = false;
  size_t TransientDropped = 0;
  std::string TransientText;
  uint64_t PendingStallSteps = 0;
};

/// Formats an opcode word the way protocol dumps spell it ("0x21").
std::string formatOpcode(uint32_t Opcode);

/// Bit-level conversions between stream words and element values.
inline float wordToFloat(uint32_t Word) {
  float Result;
  __builtin_memcpy(&Result, &Word, sizeof(Result));
  return Result;
}
inline uint32_t floatToWord(float Value) {
  uint32_t Result;
  __builtin_memcpy(&Result, &Value, sizeof(Result));
  return Result;
}

/// Element value -> stream word, matching the reference emission path.
template <ElemKind Kind> inline uint32_t valueToWord(double Value) {
  if constexpr (Kind == ElemKind::F32)
    return floatToWord(static_cast<float>(Value));
  else
    return static_cast<uint32_t>(
        static_cast<int32_t>(static_cast<int64_t>(Value)));
}

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_ACCELERATORMODEL_H
