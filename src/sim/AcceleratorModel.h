//===- AcceleratorModel.h - Accelerator behavioural models ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The behavioural contract of the simulated AXI-Stream accelerators: a
/// word-level micro-ISA state machine fed by the DMA engine. This replaces
/// the paper's SECDA-TFLite-derived HLS accelerators on the PYNQ-Z2 fabric
/// (Table I) while preserving their externally visible behaviour: opcodes,
/// stream ordering, stationarity/reuse, buffer capacities and Table I
/// throughput.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_ACCELERATORMODEL_H
#define AXI4MLIR_SIM_ACCELERATORMODEL_H

#include "sim/CostModel.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace axi4mlir {
namespace sim {

/// Element interpretation of the 32-bit stream words.
enum class ElemKind { I32, F32 };

/// Opcode literals of the micro-ISAs (the values the host streams ahead of
/// data bursts; matmul values follow paper Fig. 6a, conv values Fig. 15a).
namespace opcodes {
// MatMul family (v1..v4).
inline constexpr uint32_t MM_RESET = 0xFF;     ///< clear all buffers
inline constexpr uint32_t MM_SASBCCRC = 0x21;  ///< v1: A,B in; C out
inline constexpr uint32_t MM_SA = 0x22;        ///< load A tile
inline constexpr uint32_t MM_SB = 0x23;        ///< load B tile
inline constexpr uint32_t MM_RC = 0x24;        ///< emit C tile, clear C
inline constexpr uint32_t MM_SB_CC_RC = 0x25;  ///< B in; compute; C out
inline constexpr uint32_t MM_SA_CC_RC = 0x26;  ///< A in; compute; C out
inline constexpr uint32_t MM_CC_RC = 0x27;     ///< v2: compute; C out
inline constexpr uint32_t MM_CC = 0xF0;        ///< compute, accumulate C
inline constexpr uint32_t MM_CFG = 0x10;       ///< v4: set tM,tK,tN
// Conv family (paper Fig. 15a).
inline constexpr uint32_t CONV_SF = 1;      ///< load filter slice
inline constexpr uint32_t CONV_RO = 8;      ///< emit output slice
inline constexpr uint32_t CONV_SET_IC = 16; ///< next word: iC
inline constexpr uint32_t CONV_SET_FS = 32; ///< next word: fH (== fW)
inline constexpr uint32_t CONV_SICO = 70;   ///< input window in; compute
} // namespace opcodes

/// Base class of all accelerator behavioural models. The DMA engine feeds
/// consumeWord() with each streamed word and collects results from the
/// output FIFO. Compute time is accumulated in fabric cycles and harvested
/// by the DMA engine via takeComputeCycles().
class AcceleratorModel {
public:
  virtual ~AcceleratorModel();

  /// Consumes one input-stream word (opcode or data).
  virtual void consumeWord(uint32_t Word) = 0;

  /// Human-readable model name for diagnostics ("matmul_v3_16", ...).
  virtual std::string getName() const = 0;

  /// Full reset (also clears the error flag and output FIFO).
  virtual void reset();

  /// Pops up to \p MaxWords words from the output FIFO.
  std::vector<uint32_t> drainOutput(size_t MaxWords);
  size_t outputAvailable() const { return OutputFifo.size(); }

  /// Compute cycles accumulated since the last call.
  double takeComputeCycles() {
    double Cycles = PendingComputeCycles;
    PendingComputeCycles = 0;
    return Cycles;
  }

  /// True after a protocol error (unknown opcode, buffer overflow). Tests
  /// assert this stays false.
  bool hadError() const { return ErrorFlag; }
  const std::string &errorMessage() const { return ErrorText; }

protected:
  void pushOutput(uint32_t Word) { OutputFifo.push_back(Word); }
  void chargeCompute(double Cycles) { PendingComputeCycles += Cycles; }
  void signalError(const std::string &Message) {
    ErrorFlag = true;
    if (ErrorText.empty())
      ErrorText = Message;
  }

  std::deque<uint32_t> OutputFifo;
  double PendingComputeCycles = 0;
  bool ErrorFlag = false;
  std::string ErrorText;
};

/// Bit-level conversions between stream words and element values.
inline float wordToFloat(uint32_t Word) {
  float Result;
  __builtin_memcpy(&Result, &Word, sizeof(Result));
  return Result;
}
inline uint32_t floatToWord(float Value) {
  uint32_t Result;
  __builtin_memcpy(&Result, &Value, sizeof(Result));
  return Result;
}

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_ACCELERATORMODEL_H
