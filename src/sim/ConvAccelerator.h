//===- ConvAccelerator.h - Conv2D accelerator (Sec. IV-D) -------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Behavioural model of the paper's convolution accelerator (Fig. 15):
/// filter + output stationary, computing one output slice (all elements of
/// one output channel) per iteration. Runtime-configurable input-channel
/// count and square filter size via the `rst` opcode sequence:
///
///   SET_FS, fH, SET_IC, iC        (configuration)
///   SF, <iC*fH*fW filter words>   (load the filter of one output channel)
///   SICO, <iC*fH*fW input words>  (one window -> one output value)
///   RO                            (emit all accumulated output values)
///
/// Filter and window bursts land directly in the internal buffers; the
/// consumeBurst fast path absorbs them at memcpy speed.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_CONVACCELERATOR_H
#define AXI4MLIR_SIM_CONVACCELERATOR_H

#include "sim/AcceleratorModel.h"

namespace axi4mlir {
namespace sim {

/// Behavioural model of the Conv2D accelerator.
class ConvAccelerator : public AcceleratorModel {
public:
  /// Window-buffer capacity of the default engine build (256 channels of
  /// 7x7 filters). The static protocol model uses the same bound.
  static constexpr int64_t DefaultMaxWindowWords = 256 * 7 * 7;

  ConvAccelerator(ElemKind Kind, const SoCParams &Params,
                  int64_t MaxWindowWords = DefaultMaxWindowWords);

  void consumeWord(uint32_t Word) override;
  void consumeBurst(const uint32_t *Words, size_t Count) override;
  std::string getName() const override { return "conv2d"; }
  void reset() override;
  std::unique_ptr<AcceleratorModel> cloneFresh() const override {
    return std::make_unique<ConvAccelerator>(Kind, Params, MaxWindowWords);
  }

  int64_t getInputChannels() const { return InputChannels; }
  int64_t getFilterSize() const { return FilterSize; }
  uint64_t getWindowsComputed() const { return WindowsComputed; }

  /// Static FSM introspection for the protocol checker (see the matching
  /// hooks on MatMulAccelerator).
  static bool isSupportedOpcode(uint32_t Opcode);
  static int64_t windowWordsFor(int64_t InputChannels, int64_t FilterSize) {
    return InputChannels * FilterSize * FilterSize;
  }

private:
  void startOpcode(uint32_t Opcode);
  void finishBurst();
  template <ElemKind K> double windowDot() const;
  int64_t windowWords() const {
    return windowWordsFor(InputChannels, FilterSize);
  }

  ElemKind Kind;
  SoCParams Params;
  int64_t MaxWindowWords;

  int64_t InputChannels = 1;
  int64_t FilterSize = 1;

  std::vector<uint32_t> Filter;
  std::vector<uint32_t> Window;  // input window being received
  std::vector<double> OutputAcc; // output slice values, in emission order

  enum class State { Idle, ReadFilterSize, ReadInputChannels, ReadFilter,
                     ReadWindow };
  State St = State::Idle;
  size_t BurstFill = 0;
  size_t BurstExpected = 0;

  uint64_t WindowsComputed = 0;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_CONVACCELERATOR_H
