//===- ConvAccelerator.cpp - Conv2D accelerator implementation ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/ConvAccelerator.h"

#include <algorithm>
#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

ConvAccelerator::ConvAccelerator(ElemKind Kind, const SoCParams &Params,
                                 int64_t MaxWindowWords)
    : Kind(Kind), Params(Params), MaxWindowWords(MaxWindowWords) {
  reset();
}

void ConvAccelerator::reset() {
  AcceleratorModel::reset();
  InputChannels = 1;
  FilterSize = 1;
  Filter.clear();
  Window.clear();
  OutputAcc.clear();
  St = State::Idle;
  BurstFill = 0;
  BurstExpected = 0;
  WindowsComputed = 0;
}

void ConvAccelerator::consumeWord(uint32_t Word) {
  if (droppingInput(1))
    return;
  switch (St) {
  case State::Idle:
    if (opcodeFaultRefusal(Word))
      return;
    startOpcode(Word);
    return;
  case State::ReadFilterSize:
    FilterSize = static_cast<int32_t>(Word);
    if (FilterSize <= 0 || windowWords() > MaxWindowWords)
      signalError("conv2d: filter size exceeds accelerator window buffer");
    St = State::Idle;
    return;
  case State::ReadInputChannels:
    InputChannels = static_cast<int32_t>(Word);
    if (InputChannels <= 0 || windowWords() > MaxWindowWords)
      signalError("conv2d: iC exceeds accelerator window buffer");
    St = State::Idle;
    return;
  case State::ReadFilter:
  case State::ReadWindow: {
    uint32_t *Dst = St == State::ReadFilter ? Filter.data() : Window.data();
    Dst[BurstFill] = Word;
    if (++BurstFill == BurstExpected)
      finishBurst();
    return;
  }
  }
}

void ConvAccelerator::consumeBurst(const uint32_t *Words, size_t Count) {
  while (Count > 0) {
    if (droppingInput(Count))
      return; // drop the rest, like the word path
    if (St != State::ReadFilter && St != State::ReadWindow) {
      // Opcodes and single-word configuration states step the FSM.
      consumeWord(*Words++);
      --Count;
      continue;
    }
    // Filter/window data bursts stream straight into the buffer.
    size_t Take = std::min(Count, BurstExpected - BurstFill);
    uint32_t *Dst = St == State::ReadFilter ? Filter.data() : Window.data();
    std::memcpy(Dst + BurstFill, Words, Take * sizeof(uint32_t));
    Words += Take;
    Count -= Take;
    if ((BurstFill += Take) == BurstExpected)
      finishBurst();
  }
}

bool ConvAccelerator::isSupportedOpcode(uint32_t Opcode) {
  switch (Opcode) {
  case CONV_SET_FS:
  case CONV_SET_IC:
  case CONV_SF:
  case CONV_SICO:
  case CONV_RO:
    return true;
  default:
    return false;
  }
}

void ConvAccelerator::startOpcode(uint32_t Opcode) {
  BurstFill = 0;
  switch (Opcode) {
  case CONV_SET_FS:
    St = State::ReadFilterSize;
    return;
  case CONV_SET_IC:
    St = State::ReadInputChannels;
    return;
  case CONV_SF:
    St = State::ReadFilter;
    BurstExpected = static_cast<size_t>(windowWords());
    Filter.resize(BurstExpected);
    // Loading a new filter starts a new output slice.
    OutputAcc.clear();
    return;
  case CONV_SICO:
    St = State::ReadWindow;
    BurstExpected = static_cast<size_t>(windowWords());
    Window.resize(BurstExpected);
    return;
  case CONV_RO: {
    reserveOutput(OutputAcc.size());
    if (Kind == ElemKind::F32)
      for (double Value : OutputAcc)
        pushOutput(valueToWord<ElemKind::F32>(Value));
    else
      for (double Value : OutputAcc)
        pushOutput(valueToWord<ElemKind::I32>(Value));
    OutputAcc.clear();
    St = State::Idle;
    return;
  }
  default:
    signalError("conv2d: unsupported opcode " + formatOpcode(Opcode));
    return;
  }
}

template <ElemKind K> double ConvAccelerator::windowDot() const {
  // Inner product of the window against the filter -> one output value.
  // f32 adds products in stream order; i32 accumulates exactly in 64-bit
  // integers (SIMD-friendly; exact wherever the double-rounded reference
  // sum was representable).
  const uint32_t *W = Window.data();
  const uint32_t *F = Filter.data();
  size_t E = Window.size();
  if constexpr (K == ElemKind::F32) {
    double Sum = 0;
    for (size_t I = 0; I < E; ++I)
      Sum += static_cast<double>(wordToFloat(W[I])) *
             static_cast<double>(wordToFloat(F[I]));
    return Sum;
  } else {
    uint64_t Sum = 0;
    for (size_t I = 0; I < E; ++I)
      Sum += static_cast<uint64_t>(
          static_cast<int64_t>(static_cast<int32_t>(W[I])) *
          static_cast<int64_t>(static_cast<int32_t>(F[I])));
    return static_cast<double>(static_cast<int64_t>(Sum));
  }
}

void ConvAccelerator::finishBurst() {
  if (St == State::ReadFilter) {
    // The filter streamed straight into place; nothing to commit.
  } else if (St != State::ReadWindow) {
    // Out-of-protocol use; diagnosable in every build type.
    signalError("conv2d: finishBurst outside a data burst "
                "(protocol violation)");
  } else {
    if (Filter.size() != Window.size()) {
      signalError("conv2d: window size does not match loaded filter");
    } else {
      OutputAcc.push_back(Kind == ElemKind::F32 ? windowDot<ElemKind::F32>()
                                                : windowDot<ElemKind::I32>());
      chargeCompute(2.0 * static_cast<double>(windowWords()) /
                    convOpsPerCycle());
      ++WindowsComputed;
    }
  }
  BurstFill = 0;
  St = State::Idle;
}
