//===- ConvAccelerator.cpp - Conv2D accelerator implementation ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/ConvAccelerator.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

ConvAccelerator::ConvAccelerator(ElemKind Kind, const SoCParams &Params,
                                 int64_t MaxWindowWords)
    : Kind(Kind), Params(Params), MaxWindowWords(MaxWindowWords) {
  reset();
}

void ConvAccelerator::reset() {
  AcceleratorModel::reset();
  InputChannels = 1;
  FilterSize = 1;
  Filter.clear();
  OutputAcc.clear();
  St = State::Idle;
  Burst.clear();
  BurstExpected = 0;
  WindowsComputed = 0;
}

void ConvAccelerator::consumeWord(uint32_t Word) {
  if (ErrorFlag)
    return;
  switch (St) {
  case State::Idle:
    startOpcode(Word);
    return;
  case State::ReadFilterSize:
    FilterSize = static_cast<int32_t>(Word);
    if (FilterSize <= 0 || windowWords() > MaxWindowWords)
      signalError("conv2d: filter size exceeds accelerator window buffer");
    St = State::Idle;
    return;
  case State::ReadInputChannels:
    InputChannels = static_cast<int32_t>(Word);
    if (InputChannels <= 0 || windowWords() > MaxWindowWords)
      signalError("conv2d: iC exceeds accelerator window buffer");
    St = State::Idle;
    return;
  case State::ReadFilter:
  case State::ReadWindow:
    Burst.push_back(Word);
    if (Burst.size() == BurstExpected)
      finishBurst();
    return;
  }
}

void ConvAccelerator::startOpcode(uint32_t Opcode) {
  Burst.clear();
  switch (Opcode) {
  case CONV_SET_FS:
    St = State::ReadFilterSize;
    return;
  case CONV_SET_IC:
    St = State::ReadInputChannels;
    return;
  case CONV_SF:
    St = State::ReadFilter;
    BurstExpected = static_cast<size_t>(windowWords());
    // Loading a new filter starts a new output slice.
    OutputAcc.clear();
    return;
  case CONV_SICO:
    St = State::ReadWindow;
    BurstExpected = static_cast<size_t>(windowWords());
    return;
  case CONV_RO: {
    for (double Value : OutputAcc) {
      if (Kind == ElemKind::F32)
        pushOutput(floatToWord(static_cast<float>(Value)));
      else
        pushOutput(static_cast<uint32_t>(
            static_cast<int32_t>(static_cast<int64_t>(Value))));
    }
    OutputAcc.clear();
    St = State::Idle;
    return;
  }
  default:
    signalError("conv2d: unsupported opcode " + std::to_string(Opcode));
    return;
  }
}

void ConvAccelerator::finishBurst() {
  if (St == State::ReadFilter) {
    Filter = Burst;
  } else {
    assert(St == State::ReadWindow && "unexpected burst state");
    if (Filter.size() != Burst.size()) {
      signalError("conv2d: window size does not match loaded filter");
    } else {
      // Inner product of the window against the filter -> one output value.
      double Sum = 0;
      for (size_t I = 0, E = Burst.size(); I < E; ++I) {
        if (Kind == ElemKind::F32)
          Sum += static_cast<double>(wordToFloat(Burst[I])) *
                 static_cast<double>(wordToFloat(Filter[I]));
        else
          Sum += static_cast<double>(static_cast<int32_t>(Burst[I])) *
                 static_cast<double>(static_cast<int32_t>(Filter[I]));
      }
      OutputAcc.push_back(Sum);
      chargeCompute(2.0 * static_cast<double>(windowWords()) /
                    convOpsPerCycle());
      ++WindowsComputed;
    }
  }
  Burst.clear();
  St = State::Idle;
}
