//===- DmaEngine.cpp - AXI DMA engine model implementation ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/DmaEngine.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;

void DmaEngine::init(const accel::DmaInitConfig &Config) {
  // Buffer sizes are given in bytes in the config (paper Fig. 6a:
  // inputBufferSize = 0xFF00).
  size_t InputWords = static_cast<size_t>(Config.InputBufferSize) / 4;
  size_t OutputWords = static_cast<size_t>(Config.OutputBufferSize) / 4;
  InputRegion.assign(std::max<size_t>(InputWords, 1), 0);
  OutputRegion.assign(std::max<size_t>(OutputWords, 1), 0);
  Initialized = true;
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaInitHostCycles);
}

void DmaEngine::startSend(size_t Words, size_t OffsetWords) {
  assert(Initialized && "DMA used before dma_init");
  if (OffsetWords + Words > InputRegion.size()) {
    signalError("dma: send burst exceeds the input staging region");
    return;
  }
  if (Perf) {
    Perf->onHostCycles(Perf->params().DmaStartHostCycles);
    Perf->onDmaTransfer(Words * 4);
    Perf->onFabricCycles(
        static_cast<double>(Perf->params().DmaTransferLatencyFabricCycles) +
        static_cast<double>(Words * 4) /
            static_cast<double>(Perf->params().BytesPerFabricCycle));
  }
  // The whole staged region streams as one AXI burst at line rate.
  Accel->consumeBurst(InputRegion.data() + OffsetWords, Words);
  // The blocking driver waits for the accelerator to absorb the burst, so
  // compute triggered by this burst lands on the same timeline.
  if (Perf)
    Perf->onFabricCycles(Accel->takeComputeCycles());
}

void DmaEngine::waitSendCompletion() {
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaWaitHostCycles);
}

void DmaEngine::startRecv(size_t Words, size_t OffsetWords) {
  assert(Initialized && "DMA used before dma_init");
  if (OffsetWords + Words > OutputRegion.size()) {
    signalError("dma: recv burst exceeds the output staging region");
    return;
  }
  if (Perf) {
    Perf->onHostCycles(Perf->params().DmaStartHostCycles);
    Perf->onDmaTransfer(Words * 4);
    // Any compute still pending (e.g. triggered by a compute-only opcode).
    Perf->onFabricCycles(Accel->takeComputeCycles());
    Perf->onFabricCycles(
        static_cast<double>(Perf->params().DmaTransferLatencyFabricCycles) +
        static_cast<double>(Words * 4) /
            static_cast<double>(Perf->params().BytesPerFabricCycle));
  }
  if (Accel->outputAvailable() < Words) {
    signalError("dma: accelerator produced fewer words than requested");
    return;
  }
  // Results drain straight into the staging region, no intermediate copy.
  Accel->drainOutputInto(OutputRegion.data() + OffsetWords, Words);
}

void DmaEngine::waitRecvCompletion() {
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaWaitHostCycles);
}
