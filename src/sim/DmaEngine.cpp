//===- DmaEngine.cpp - AXI DMA engine model implementation ----------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The recovery layer lives entirely in this file so all three executors
// (walker, compiled plan, threaded dispatch) heal identically: they issue
// the same runtime-call sequence, the engine absorbs the same faults.
//
// Counter contract (PerfModel.h): the first logical attempt of every send
// charges the pre-existing counters (HostCycles/DmaTransfers/FabricCycles)
// exactly as a fault-free run would, even when a fault eats the attempt.
// Everything recovery adds on top — retry backoff, watchdog polling,
// post-reset replay, fallback compute — lands on dedicated counters. A
// recovered run therefore reports bit-identical base counters to its
// fault-free twin unless it left the fabric via CPU fallback.
//
//===----------------------------------------------------------------------===//

#include "sim/DmaEngine.h"

using namespace axi4mlir;
using namespace axi4mlir::sim;

void DmaEngine::init(const accel::DmaInitConfig &Config) {
  // Buffer sizes are given in bytes in the config (paper Fig. 6a:
  // inputBufferSize = 0xFF00).
  size_t InputWords = static_cast<size_t>(Config.InputBufferSize) / 4;
  size_t OutputWords = static_cast<size_t>(Config.OutputBufferSize) / 4;
  InputRegion.assign(std::max<size_t>(InputWords, 1), 0);
  OutputRegion.assign(std::max<size_t>(OutputWords, 1), 0);
  Initialized = true;
  // A new logical session: bursts staged before this init are gone, so the
  // replay log must not resurrect them.
  ReplayLog.clear();
  DrainedWords = 0;
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaInitHostCycles);
}

void DmaEngine::attachFaultInjector(FaultInjector *I) {
  Injector = I;
  // Re-arm for a fresh run. A previous run may have degraded off the
  // primary; restore it (and any consumed spare) to a clean state.
  if (ActiveAccel != Accel) {
    if (Accel)
      Accel->reset();
    ActiveAccel = Accel;
  }
  for (SpareUnit &Spare : Spares) {
    if (Spare.Used)
      Spare.Model->reset();
    Spare.Used = false;
  }
  FallbackOwner.reset();
  ReplayLog.clear();
  DrainedWords = 0;
  CpuFallbackActive = false;
  InjectionDisabled = false;
  Sticky = AccelStatus::Ok;
  ErrorFlag = false;
  ErrorText.clear();
}

void DmaEngine::addSpare(AcceleratorModel *Spare, double Score) {
  Spares.push_back({Spare, Score, /*Used=*/false});
}

double DmaEngine::streamFabricCycles(size_t Words) const {
  return static_cast<double>(
             Perf->params().DmaTransferLatencyFabricCycles) +
         static_cast<double>(Words * 4) /
             static_cast<double>(Perf->params().BytesPerFabricCycle);
}

void DmaEngine::chargeComputeCycles(double Cycles, bool Replay) {
  if (!Perf || Cycles == 0)
    return;
  if (Replay)
    Perf->onRecoveryReplay(Cycles);
  else if (CpuFallbackActive)
    Perf->onCpuFallbackCycles(Cycles);
  else
    Perf->onFabricCycles(Cycles);
}

AccelStatus DmaEngine::startSend(size_t Words, size_t OffsetWords) {
  if (!Initialized) {
    signalError("dma: dma_start_send before dma_init");
    return latch(AccelStatus::Fatal);
  }
  if (OffsetWords + Words > InputRegion.size()) {
    signalError("dma: send burst exceeds the input staging region");
    return latch(AccelStatus::Fatal);
  }
  // The logical first-attempt cost, charged regardless of what faults do
  // to the attempt: base counters describe the fault-free sequence.
  if (Perf) {
    Perf->onHostCycles(Perf->params().DmaStartHostCycles);
    Perf->onDmaTransfer(Words * 4);
    Perf->onFabricCycles(streamFabricCycles(Words));
  }
  if (!kFaultHooksEnabled || !Injector) {
    // The fault-free fast path: one burst at line rate, compute harvested
    // onto the same timeline (blocking driver).
    ActiveAccel->consumeBurst(InputRegion.data() + OffsetWords, Words);
    if (Perf)
      chargeComputeCycles(ActiveAccel->takeComputeCycles(), /*Replay=*/false);
    return status();
  }
  return sendWithRecovery(Words, OffsetWords);
}

AccelStatus DmaEngine::sendWithRecovery(size_t Words, size_t OffsetWords) {
  const RecoveryPolicy &Policy = Injector->recovery();
  const uint32_t *Data = InputRegion.data() + OffsetWords;
  // Words of this burst the accelerator has absorbed; each attempt streams
  // the unabsorbed suffix.
  size_t Done = 0;
  uint32_t RetriesLeft = Policy.MaxRetries;
  // Compute harvested from this burst so far. Charged only when the burst
  // resolves: to FabricCycles on success (exactly one clean pass — the
  // fault-free amount), or to the replay counter when a reset discards
  // the partial progress. This keeps FabricCycles bit-identical to the
  // fault-free run even when a timeout strikes after partial absorption.
  double BurstCompute = 0;

  while (true) {
    uint64_t FiredBefore = Injector->faultsFired();
    const FaultEvent *Event =
        InjectionDisabled ? nullptr : Injector->querySend();
    AccelStatus Outcome = AccelStatus::Ok;
    std::string FaultText;

    if (Event && Event->Kind == FaultKind::CorruptWord) {
      // Store-and-forward link CRC catches the flipped word before it is
      // committed to the stream: nothing reaches the accelerator.
      Outcome = AccelStatus::Transient;
      FaultText = "dma: " + describeFault(*Event);
    } else if (Event && Event->Kind == FaultKind::DropSend) {
      // The burst vanishes and the completion never signals; the watchdog
      // polls out its whole budget before declaring the unit stuck.
      if (Perf)
        Perf->onWatchdogPolls(static_cast<double>(Policy.WatchdogPolls) *
                              static_cast<double>(Policy.PollCycles));
      Outcome = AccelStatus::Timeout;
      FaultText = "dma: " + describeFault(*Event) + " (watchdog timeout)";
    } else {
      size_t Deliver = Words - Done;
      bool Truncated = false;
      if (Event && Event->Kind == FaultKind::TruncateSend) {
        // A short transfer: a prefix lands, the AXI completion check
        // notices the missing beats.
        Deliver = Deliver / 2;
        Truncated = true;
      }
      ActiveAccel->consumeBurst(Data + Done, Deliver);
      BurstCompute += ActiveAccel->takeComputeCycles();
      uint64_t StallSteps = ActiveAccel->takeStallSteps();
      if (ActiveAccel->hadError()) {
        // Deterministic protocol error: retrying reproduces it.
        chargeComputeCycles(BurstCompute, /*Replay=*/false);
        return latch(AccelStatus::Fatal);
      }
      size_t Dropped = 0;
      if (ActiveAccel->transientPending()) {
        // The accelerator refused an opcode and dropped the suffix; the
        // drop count is exactly what the retry must re-send.
        FaultText = ActiveAccel->transientMessage();
        Dropped = ActiveAccel->takeTransientDropped();
        Outcome = AccelStatus::Transient;
      } else if (Truncated) {
        FaultText = "dma: " + describeFault(*Event) + " (short transfer)";
        Outcome = AccelStatus::Transient;
      }
      Done += Deliver - Dropped;
      if (StallSteps > 0) {
        if (StallSteps > Policy.WatchdogPolls) {
          if (Perf)
            Perf->onWatchdogPolls(
                static_cast<double>(Policy.WatchdogPolls) *
                static_cast<double>(Policy.PollCycles));
          FaultText = ActiveAccel->getName() +
                      ": injected stall fault (" +
                      std::to_string(StallSteps) +
                      " steps) exceeded the watchdog budget";
          Outcome = AccelStatus::Timeout;
        } else if (Perf) {
          // Tolerable stall: the watchdog just polls it out.
          Perf->onWatchdogPolls(static_cast<double>(StallSteps) *
                                static_cast<double>(Policy.PollCycles));
        }
      }
    }
    if (Perf)
      Perf->onFaultsInjected(Injector->faultsFired() - FiredBefore);

    if (Outcome == AccelStatus::Ok && Done >= Words) {
      chargeComputeCycles(BurstCompute, /*Replay=*/false);
      if (!InjectionDisabled) {
        Injector->commitSend();
        if (Policy.Enabled)
          ReplayLog.emplace_back(Data, Data + Words);
      }
      return AccelStatus::Ok;
    }

    if (!Policy.Enabled) {
      chargeComputeCycles(BurstCompute, /*Replay=*/false);
      signalError(FaultText + " (recovery disabled)");
      return latch(Outcome);
    }
    if (Outcome == AccelStatus::Timeout) {
      // Only a full re-stage recovers a stuck unit: reset, replay the
      // delivered history, then re-deliver this burst from scratch. The
      // reset discards this burst's partial progress, so its compute so
      // far moves to the replay counter.
      chargeComputeCycles(BurstCompute, /*Replay=*/true);
      BurstCompute = 0;
      resetAndReplay();
      Done = 0;
    }
    if (RetriesLeft > 0) {
      --RetriesLeft;
      if (Perf)
        Perf->onRecoveryRetry(static_cast<double>(Policy.BackoffCycles));
      continue;
    }
    // Retry budget exhausted: degrade to a spare or the host CPU. The
    // replacement unit starts clean, so re-stage onto it.
    if (!degradeToNextUnit()) {
      chargeComputeCycles(BurstCompute, /*Replay=*/false);
      signalError(FaultText + " (retries exhausted, no failover target)");
      return latch(AccelStatus::Fatal);
    }
    chargeComputeCycles(BurstCompute, /*Replay=*/true);
    BurstCompute = 0;
    resetAndReplay();
    Done = 0;
  }
}

void DmaEngine::resetAndReplay() {
  ActiveAccel->reset();
  // Replay bypasses injection entirely: these bursts already beat their
  // faults once, and the logical cursors must not advance again.
  FaultInjector *Saved = ActiveAccel->faultInjector();
  ActiveAccel->attachFaultInjector(nullptr);
  double ReplayCycles = 0;
  for (const std::vector<uint32_t> &Burst : ReplayLog) {
    ActiveAccel->consumeBurst(Burst.data(), Burst.size());
    ReplayCycles += streamFabricCycles(Burst.size());
    ReplayCycles += ActiveAccel->takeComputeCycles();
  }
  ActiveAccel->attachFaultInjector(Saved);
  // Earlier recvs already consumed this prefix of the output stream;
  // discard it again so the next recv sees exactly what it would have.
  if (DrainedWords > 0) {
    std::vector<uint32_t> Scratch(DrainedWords);
    ActiveAccel->drainOutputInto(Scratch.data(), DrainedWords);
  }
  if (Perf)
    Perf->onRecoveryReplay(ReplayCycles);
}

bool DmaEngine::degradeToNextUnit() {
  // Best spare first: lowest score wins, ties resolve to registration
  // order (the TilingPlan cost-model ranking the caller computed).
  SpareUnit *Best = nullptr;
  for (SpareUnit &Spare : Spares) {
    if (Spare.Used || Spare.Model == ActiveAccel)
      continue;
    if (!Best || Spare.Score < Best->Score)
      Best = &Spare;
  }
  if (Best) {
    Best->Used = true;
    ActiveAccel = Best->Model;
    InjectionDisabled = true;
    if (Perf)
      Perf->onFailover();
    return true;
  }
  // No spare: clone the model for host-executed fallback. Its "compute
  // cycles" land on the CPU-fallback counter from here on.
  std::unique_ptr<AcceleratorModel> Clone =
      ActiveAccel ? ActiveAccel->cloneFresh() : nullptr;
  if (!Clone)
    return false;
  FallbackOwner = std::move(Clone);
  ActiveAccel = FallbackOwner.get();
  InjectionDisabled = true;
  CpuFallbackActive = true;
  if (Perf)
    Perf->onCpuFallbackEvent();
  return true;
}

AccelStatus DmaEngine::waitSendCompletion() {
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaWaitHostCycles);
  return status();
}

AccelStatus DmaEngine::startRecv(size_t Words, size_t OffsetWords) {
  if (!Initialized) {
    signalError("dma: dma_start_recv before dma_init");
    return latch(AccelStatus::Fatal);
  }
  if (OffsetWords + Words > OutputRegion.size()) {
    signalError("dma: recv burst exceeds the output staging region");
    return latch(AccelStatus::Fatal);
  }
  if (Perf) {
    Perf->onHostCycles(Perf->params().DmaStartHostCycles);
    Perf->onDmaTransfer(Words * 4);
    // Any compute still pending (e.g. triggered by a compute-only opcode).
    chargeComputeCycles(ActiveAccel->takeComputeCycles(), /*Replay=*/false);
    Perf->onFabricCycles(streamFabricCycles(Words));
  }
  if (ActiveAccel->outputAvailable() < Words) {
    signalError("dma: accelerator produced fewer words than requested");
    return latch(AccelStatus::Fatal);
  }
  // Results drain straight into the staging region, no intermediate copy.
  ActiveAccel->drainOutputInto(OutputRegion.data() + OffsetWords, Words);
  if (kFaultHooksEnabled && Injector && Injector->recovery().Enabled)
    DrainedWords += Words;
  return status();
}

AccelStatus DmaEngine::waitRecvCompletion() {
  if (Perf)
    Perf->onHostCycles(Perf->params().DmaWaitHostCycles);
  return status();
}
