//===- MatMulAccelerator.h - Tile MatMul engines (Table I) ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The v1..v4 tile-based MatMul accelerators of paper Table I:
///
///   | Type | Possible reuse     | Opcodes            | (Size, OPs/cycle) |
///   | v1   | Nothing            | sAsBcCrC           | (4,10)(8,60)(16,112)
///   | v2   | Inputs             | sA, sB, cCrC       |        "
///   | v3   | Inputs + Output    | sA, sB, cC, rC     |        "
///   | v4   | Ins/Out, flex size | cfg, sA, sB, cC, rC|        "
///
/// All versions share the word-level protocol; versions differ in which
/// opcodes they accept (reuse capability) and whether tile dimensions are
/// runtime-configurable (v4, paper Sec. IV-C). Data bursts land directly
/// in the internal operand buffers (word-at-a-time through the FSM, or
/// memcpy'd whole via the consumeBurst fast path).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_MATMULACCELERATOR_H
#define AXI4MLIR_SIM_MATMULACCELERATOR_H

#include "sim/AcceleratorModel.h"

namespace axi4mlir {
namespace sim {

/// Behavioural model of one MatMul accelerator instance.
class MatMulAccelerator : public AcceleratorModel {
public:
  enum class Version { V1, V2, V3, V4 };

  /// \p Size is the supported square tile size (Table I). For V4 this is
  /// the default tile; cfg opcodes may change tM/tK/tN at runtime as long
  /// as each operand tile fits the buffer capacity.
  MatMulAccelerator(Version Ver, int64_t Size, ElemKind Kind,
                    const SoCParams &Params);

  /// Resolves the engine version from an anchored `_vN` token in an
  /// accelerator name (e.g. `matmul_v3_16`): the digits must be terminated
  /// by `_` or the end of the name, so `matmul_v12` is version 12 (rejected
  /// as unsupported) rather than a silent `v1` substring match. Conflicting
  /// tokens, missing tokens and unsupported versions fail with \p Error.
  /// Shared by axi4mlir-opt --run and the serve layer's SoC pool builder.
  static FailureOr<Version> versionFromName(const std::string &Name,
                                            std::string &Error);

  void consumeWord(uint32_t Word) override;
  void consumeBurst(const uint32_t *Words, size_t Count) override;
  std::string getName() const override;
  void reset() override;
  std::unique_ptr<AcceleratorModel> cloneFresh() const override;

  int64_t getTileM() const { return TileM; }
  int64_t getTileN() const { return TileN; }
  int64_t getTileK() const { return TileK; }
  /// Per-operand internal buffer capacity in words.
  int64_t getBufferCapacityWords() const { return BufferCapacityWords; }
  uint64_t getTilesComputed() const { return TilesComputed; }

  //===--------------------------------------------------------------------===//
  // Static FSM introspection
  //
  // The static protocol checker (src/analysis/ProtocolModel) mirrors this
  // FSM without instantiating it. These hooks are the single source of
  // truth the real FSM and the abstract model share: the version's opcode
  // set, the buffer capacity rule and the per-opcode burst length.
  //===--------------------------------------------------------------------===//

  /// True when \p Opcode is part of version \p Ver's micro-ISA (Table I).
  static bool versionSupportsOpcode(Version Ver, uint32_t Opcode);
  /// Per-operand internal buffer capacity in words for \p Ver at default
  /// tile size \p Size (v4's flex memories allow 16x the square tile).
  static int64_t bufferCapacityWordsFor(Version Ver, int64_t Size);
  /// Expected data-burst payload words for \p Opcode under the given tile
  /// dimensions (0 for immediate opcodes; MM_CFG expects 3 cfg words).
  static int64_t burstWordsFor(uint32_t Opcode, int64_t TileM, int64_t TileK,
                               int64_t TileN);
  /// True when completing \p Opcode pushes a TileM*TileN output tile into
  /// the drain FIFO.
  static bool opcodeEmitsOutput(uint32_t Opcode);

protected:
  /// The burst plumbing is protected (not private) so tests can pin the
  /// out-of-protocol paths: calling either in Idle state must signal a
  /// diagnosable error, never Release-mode UB.
  /// Copies \p Count burst words into the receive target of the current
  /// state at position BurstFill (BufA/BufB, split A-then-B, or the cfg
  /// staging words).
  void copyIn(const uint32_t *Words, size_t Count);
  void finishBurst();

private:
  bool supportsOpcode(uint32_t Opcode) const;
  void startOpcode(uint32_t Opcode);
  void compute();
  template <ElemKind K> void computeTile();
  void emitC();
  template <ElemKind K> void emitCImpl();

  Version Ver;
  int64_t BaseSize;
  ElemKind Kind;
  SoCParams Params;

  int64_t TileM, TileN, TileK;
  int64_t BufferCapacityWords;

  std::vector<uint32_t> BufA, BufB;
  std::vector<double> AccC; // accumulator (double covers i32 & f32 exactly)
  /// Scratch row accumulator for computeTile (persists across tiles to
  /// avoid per-compute allocation).
  std::vector<double> RowAcc;

  enum class State { Idle, ReadCfg, ReadA, ReadB, ReadAThenB };
  State St = State::Idle;
  uint32_t CurrentOpcode = 0;
  uint32_t CfgWords[3] = {0, 0, 0}; // tM, tK, tN staging
  size_t BurstFill = 0;             // words of the burst received so far
  size_t BurstExpected = 0;

  uint64_t TilesComputed = 0;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_MATMULACCELERATOR_H
