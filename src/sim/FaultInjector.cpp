//===- FaultInjector.cpp - Deterministic SoC fault injection --------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjector.h"

#include <charconv>
#include <random>

using namespace axi4mlir;
using namespace axi4mlir::sim;

const char *sim::toString(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::DropSend:
    return "drop";
  case FaultKind::TruncateSend:
    return "truncate";
  case FaultKind::CorruptWord:
    return "corrupt";
  case FaultKind::TransientError:
    return "transient";
  case FaultKind::Stall:
    return "stall";
  }
  return "unknown";
}

FaultEvent *FaultInjector::fire(uint64_t Index, bool Dma) {
  for (FaultEvent &Event : Plan.Events) {
    if (Event.At != Index || isDmaFault(Event.Kind) != Dma)
      continue;
    if (Event.Fired >= Event.Attempts)
      continue;
    ++Event.Fired;
    ++TotalFired;
    return &Event;
  }
  return nullptr;
}

const FaultEvent *FaultInjector::querySend() {
  return fire(SendCursor, /*Dma=*/true);
}

const FaultEvent *FaultInjector::onOpcode() {
  const FaultEvent *Event = fire(OpcodeCursor, /*Dma=*/false);
  // A transient-error refusal leaves the cursor in place: the retry
  // re-presents the same opcode (and re-queries the same event). Stalls
  // and clean opcodes commit.
  if (!Event || Event->Kind != FaultKind::TransientError)
    ++OpcodeCursor;
  return Event;
}

std::string sim::describeFault(const FaultEvent &Event) {
  std::string Text = std::string("injected ") + toString(Event.Kind);
  switch (Event.Kind) {
  case FaultKind::DropSend:
    Text += "-burst fault";
    break;
  case FaultKind::TruncateSend:
    Text += "d-burst fault";
    break;
  case FaultKind::CorruptWord:
    Text += "-word fault (word " + std::to_string(Event.WordIndex) + ")";
    break;
  case FaultKind::TransientError:
    Text += "-error fault";
    break;
  case FaultKind::Stall:
    Text += " fault (" + std::to_string(Event.Steps) + " steps)";
    break;
  }
  return Text;
}

FaultPlan sim::makeRandomFaultPlan(uint32_t Seed, unsigned Count,
                                   uint64_t MaxIndex) {
  FaultPlan Plan;
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<uint64_t> IndexDist(
      0, MaxIndex ? MaxIndex - 1 : 0);
  std::uniform_int_distribution<int> KindDist(0, 4);
  std::uniform_int_distribution<uint64_t> StepsDist(1, 128);
  std::uniform_int_distribution<uint32_t> WordDist(0, 15);
  for (unsigned I = 0; I < Count; ++I) {
    FaultEvent Event;
    Event.Kind = static_cast<FaultKind>(KindDist(Rng));
    Event.At = IndexDist(Rng);
    Event.Steps = StepsDist(Rng);
    Event.WordIndex = WordDist(Rng);
    Event.XorMask = 1u << (WordDist(Rng) & 31);
    Plan.Events.push_back(Event);
  }
  return Plan;
}

namespace {

bool parseUInt(const std::string &Text, uint64_t &Value) {
  if (Text.empty())
    return false;
  auto [Ptr, Ec] = std::from_chars(Text.data(), Text.data() + Text.size(),
                                   Value);
  return Ec == std::errc() && Ptr == Text.data() + Text.size();
}

/// Splits "a@b:c=d" style entries on a delimiter.
std::vector<std::string> split(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

} // namespace

LogicalResult sim::parseFaultSpec(const std::string &Spec, FaultPlan &Plan,
                                  std::string &Error) {
  auto Fail = [&](const std::string &Message) {
    Error = "--faults: " + Message;
    return failure();
  };
  for (const std::string &Entry : split(Spec, ',')) {
    if (Entry.empty())
      continue;
    // Policy entries.
    if (Entry == "norecover") {
      Plan.Recovery.Enabled = false;
      continue;
    }
    size_t Eq = Entry.find('=');
    size_t At = Entry.find('@');
    if (At == std::string::npos && Eq != std::string::npos) {
      std::string Key = Entry.substr(0, Eq);
      uint64_t Value = 0;
      if (Key == "rand") {
        // rand=SEED:n=COUNT[:max=M]
        std::vector<std::string> Parts = split(Entry, ':');
        uint64_t Seed = 0, Count = 0, Max = 64;
        if (!parseUInt(Parts[0].substr(Eq + 1), Seed))
          return Fail("bad seed in '" + Entry + "'");
        for (size_t I = 1; I < Parts.size(); ++I) {
          size_t E = Parts[I].find('=');
          if (E == std::string::npos)
            return Fail("expected key=value in '" + Entry + "'");
          std::string K = Parts[I].substr(0, E);
          uint64_t V = 0;
          if (!parseUInt(Parts[I].substr(E + 1), V))
            return Fail("bad number in '" + Entry + "'");
          if (K == "n")
            Count = V;
          else if (K == "max")
            Max = V;
          else
            return Fail("unknown key '" + K + "' in '" + Entry + "'");
        }
        FaultPlan Random = makeRandomFaultPlan(
            static_cast<uint32_t>(Seed), static_cast<unsigned>(Count), Max);
        Plan.Events.insert(Plan.Events.end(), Random.Events.begin(),
                           Random.Events.end());
        continue;
      }
      if (!parseUInt(Entry.substr(Eq + 1), Value))
        return Fail("bad number in '" + Entry + "'");
      if (Key == "retries")
        Plan.Recovery.MaxRetries = static_cast<uint32_t>(Value);
      else if (Key == "watchdog")
        Plan.Recovery.WatchdogPolls = Value;
      else if (Key == "backoff")
        Plan.Recovery.BackoffCycles = Value;
      else
        return Fail("unknown policy key '" + Key + "'");
      continue;
    }
    // Event entries: kind@INDEX[:key=value...]
    if (At == std::string::npos)
      return Fail("expected kind@index in '" + Entry + "'");
    std::vector<std::string> Parts = split(Entry, ':');
    std::string Kind = Parts[0].substr(0, At);
    FaultEvent Event;
    if (Kind == "drop")
      Event.Kind = FaultKind::DropSend;
    else if (Kind == "truncate")
      Event.Kind = FaultKind::TruncateSend;
    else if (Kind == "corrupt")
      Event.Kind = FaultKind::CorruptWord;
    else if (Kind == "transient")
      Event.Kind = FaultKind::TransientError;
    else if (Kind == "stall")
      Event.Kind = FaultKind::Stall;
    else
      return Fail("unknown fault kind '" + Kind + "'");
    if (!parseUInt(Parts[0].substr(At + 1), Event.At))
      return Fail("bad index in '" + Entry + "'");
    Event.Steps = 128; // default stall length: past the default watchdog
    for (size_t I = 1; I < Parts.size(); ++I) {
      size_t E = Parts[I].find('=');
      if (E == std::string::npos)
        return Fail("expected key=value in '" + Entry + "'");
      std::string K = Parts[I].substr(0, E);
      uint64_t V = 0;
      if (!parseUInt(Parts[I].substr(E + 1), V))
        return Fail("bad number in '" + Entry + "'");
      if (K == "word")
        Event.WordIndex = static_cast<uint32_t>(V);
      else if (K == "attempts")
        Event.Attempts = static_cast<uint32_t>(V);
      else if (K == "steps")
        Event.Steps = V;
      else
        return Fail("unknown key '" + K + "' in '" + Entry + "'");
    }
    Plan.Events.push_back(Event);
  }
  return success();
}
