//===- CostModel.h - SoC timing/cost parameters -----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Calibration constants for the simulated SoC, standing in for the paper's
/// PYNQ-Z2 testbed (Zynq-7000: dual Cortex-A9 @650 MHz host, FPGA fabric
/// @200 MHz, 32-bit AXI-Stream). The absolute numbers are approximations;
/// what matters for reproducing the paper's figures is the *relative* cost
/// structure: per-element vs vectorized copies, cache-miss penalties,
/// per-transfer DMA driver overhead, and fabric streaming/compute rates.
/// See DESIGN.md Sec. 5.4.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_COSTMODEL_H
#define AXI4MLIR_SIM_COSTMODEL_H

#include <cstdint>

namespace axi4mlir {
namespace sim {

/// All tunable parameters of the system model.
struct SoCParams {
  //===------------------------------------------------------------------===//
  // Clocks
  //===------------------------------------------------------------------===//

  /// ARM Cortex-A9 host clock (PYNQ-Z2: 650 MHz).
  double HostClockHz = 650e6;
  /// FPGA fabric clock (accelerators synthesized at 200 MHz, Table I).
  double FabricClockHz = 200e6;

  //===------------------------------------------------------------------===//
  // Host core
  //===------------------------------------------------------------------===//

  /// Base cycles per (non-memory) instruction.
  double CyclesPerInstruction = 1.0;
  /// Extra cycles on an L1 miss that hits L2.
  uint64_t L1MissPenaltyCycles = 8;
  /// Extra cycles on an L2 miss (DRAM access).
  uint64_t L2MissPenaltyCycles = 60;

  /// Instruction overhead charged per scalar load/store beyond the memory
  /// access itself (address arithmetic).
  uint64_t ScalarAccessExtraInstructions = 1;
  /// Loop iteration overhead: induction increment + compare (+ branch is
  /// counted separately as a branch instruction).
  uint64_t LoopIterationInstructions = 2;
  /// Fixed overhead of a memcpy call (call + setup + tail handling).
  uint64_t MemcpySetupInstructions = 12;
  /// Bytes moved per vectorized memcpy instruction (NEON 128-bit).
  uint64_t MemcpyBytesPerInstruction = 16;

  //===------------------------------------------------------------------===//
  // Caches (paper Fig. 5: [32K, 512K], data + shared)
  //===------------------------------------------------------------------===//

  int64_t L1SizeBytes = 32 * 1024;
  int64_t L1Associativity = 4;
  int64_t L2SizeBytes = 512 * 1024;
  int64_t L2Associativity = 8;
  int64_t CacheLineBytes = 64;

  //===------------------------------------------------------------------===//
  // DMA / AXI
  //===------------------------------------------------------------------===//

  /// One-time host cost of dma_init: mmap of the DMA regions + engine
  /// configuration (driver syscalls dominate; calibrated so accelerator
  /// offload only pays off for problems with dims >= 64, paper Fig. 10).
  uint64_t DmaInitHostCycles = 450000;
  /// Host cycles to program a DMA descriptor (dma_start_send/recv).
  uint64_t DmaStartHostCycles = 600;
  /// Host cycles spent in dma_wait_*_completion (polling the status reg).
  uint64_t DmaWaitHostCycles = 400;
  /// Fabric-side latency per DMA transfer before data starts streaming.
  uint64_t DmaTransferLatencyFabricCycles = 30;
  /// Stream width: one 32-bit word per fabric cycle.
  uint64_t BytesPerFabricCycle = 4;

  /// Converts accumulated cost into milliseconds of task-clock. Host and
  /// fabric time are serialized, matching the blocking driver the paper
  /// generates (send -> wait -> compute -> recv -> wait).
  double taskClockMs(double HostCycles, double FabricCycles) const {
    return (HostCycles / HostClockHz + FabricCycles / FabricClockHz) * 1e3;
  }
};

/// MatMul accelerator arithmetic throughput from Table I (OPs/cycle; one
/// MAC = 2 OPs). Sizes 4/8/16 -> 10/60/112.
inline double matmulOpsPerCycle(int64_t AccelSize) {
  if (AccelSize <= 4)
    return 10.0;
  if (AccelSize <= 8)
    return 60.0;
  return 112.0;
}

/// Conv accelerator throughput (OPs/cycle), sized like the v3_8 engines.
inline double convOpsPerCycle() { return 64.0; }

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_COSTMODEL_H
