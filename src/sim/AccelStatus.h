//===- AccelStatus.h - Structured accelerator/DMA call status ---*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The status lattice returned by every DMA runtime call. Replaces the old
/// "run to completion, then inspect a sticky error flag" protocol: the DMA
/// engine reports the outcome of each send/wait/recv, the recovery layer
/// absorbs Transient/Timeout when it can, and the executors stop issuing
/// work the moment a call comes back non-Ok.
///
///   Ok        - the call completed; keep issuing work.
///   Transient - a detected, retryable fault (corrupt/truncated transfer,
///               accelerator transient-error opcode). Recoverable by
///               re-issuing the transfer.
///   Timeout   - the watchdog gave up waiting for accelerator progress
///               (lost transfer, FSM stall past the poll budget).
///               Recoverable only by re-staging from a known-good state.
///   Fatal     - a protocol error that reproduces deterministically
///               (region overflow, unsupported opcode, retries exhausted
///               with no failover target). Not recoverable.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_ACCELSTATUS_H
#define AXI4MLIR_SIM_ACCELSTATUS_H

namespace axi4mlir {
namespace sim {

enum class AccelStatus { Ok, Transient, Timeout, Fatal };

inline const char *toString(AccelStatus Status) {
  switch (Status) {
  case AccelStatus::Ok:
    return "ok";
  case AccelStatus::Transient:
    return "transient";
  case AccelStatus::Timeout:
    return "timeout";
  case AccelStatus::Fatal:
    return "fatal";
  }
  return "unknown";
}

inline bool succeeded(AccelStatus Status) { return Status == AccelStatus::Ok; }

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_ACCELSTATUS_H
