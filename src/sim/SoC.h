//===- SoC.h - Bundled system simulator -------------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SoC bundles one host perf model, one accelerator model and one DMA
/// engine — the simulated equivalent of the paper's PYNQ-Z2 board. Factory
/// helpers build the Table I accelerator variants and the Conv2D engine.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_SOC_H
#define AXI4MLIR_SIM_SOC_H

#include "sim/ConvAccelerator.h"
#include "sim/DmaEngine.h"
#include "sim/MatMulAccelerator.h"

#include <memory>
#include <vector>

namespace axi4mlir {
namespace sim {

/// A complete simulated system: CPU cost model + accelerator + DMA.
class SoC {
public:
  SoC(std::unique_ptr<AcceleratorModel> TheAccel, const SoCParams &Params)
      : Params(Params), Perf(Params), Accel(std::move(TheAccel)),
        Dma(&Perf, Accel.get()) {}

  /// A CPU-only system (no accelerator); DMA unusable.
  explicit SoC(const SoCParams &Params)
      : Params(Params), Perf(Params), Accel(nullptr), Dma(&Perf, nullptr) {}

  const SoCParams &params() const { return Params; }
  HostPerfModel &perf() { return Perf; }
  AcceleratorModel *accelerator() { return Accel.get(); }
  DmaEngine &dma() { return Dma; }
  const DmaEngine &dma() const { return Dma; }

  PerfReport report() const { return Perf.report(); }
  void resetCounters() { Perf.reset(); }

  /// Binds \p Injector (caller-owned, may be nullptr to detach) to the DMA
  /// engine and the accelerator model, re-arming the recovery layer for a
  /// fresh run.
  void attachFaultInjector(FaultInjector *Injector) {
    Dma.attachFaultInjector(Injector);
    if (Accel)
      Accel->attachFaultInjector(Injector);
  }

  /// Takes ownership of a failover target. \p Score ranks it against other
  /// spares (lower is better — pass the TilingPlan modeled cost). The
  /// spare must be protocol-identical to the primary: the compiled
  /// driver's opcode stream is re-staged onto it verbatim after failover.
  void addSpareAccelerator(std::unique_ptr<AcceleratorModel> Spare,
                           double Score) {
    Dma.addSpare(Spare.get(), Score);
    SpareAccels.push_back(std::move(Spare));
  }
  size_t spareAcceleratorCount() const { return SpareAccels.size(); }

private:
  SoCParams Params;
  HostPerfModel Perf;
  std::unique_ptr<AcceleratorModel> Accel;
  std::vector<std::unique_ptr<AcceleratorModel>> SpareAccels;
  DmaEngine Dma;
};

/// Builds a simulated board hosting a MatMul accelerator of the given
/// Table I version/size.
inline std::unique_ptr<SoC>
makeMatMulSoC(MatMulAccelerator::Version Ver, int64_t Size,
              ElemKind Kind = ElemKind::I32, SoCParams Params = SoCParams()) {
  auto Accel = std::make_unique<MatMulAccelerator>(Ver, Size, Kind, Params);
  return std::make_unique<SoC>(std::move(Accel), Params);
}

/// Builds a simulated board hosting the Conv2D accelerator.
inline std::unique_ptr<SoC>
makeConvSoC(ElemKind Kind = ElemKind::I32, SoCParams Params = SoCParams(),
            int64_t MaxWindowWords = 256 * 7 * 7) {
  auto Accel = std::make_unique<ConvAccelerator>(Kind, Params,
                                                 MaxWindowWords);
  return std::make_unique<SoC>(std::move(Accel), Params);
}

/// Builds a CPU-only system (for the mlir_CPU baselines).
inline std::unique_ptr<SoC> makeCpuOnlySoC(SoCParams Params = SoCParams()) {
  return std::make_unique<SoC>(Params);
}

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_SOC_H
