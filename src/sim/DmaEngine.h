//===- DmaEngine.h - AXI DMA engine model -----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the Zynq AXI DMA engine and its memory-mapped staging regions
/// (paper Fig. 1 and Sec. III-A). The host stages data into the input
/// region (via the runtime's copy_to_dma_region), then dma_start_send
/// streams a burst to the accelerator over AXI-Stream; results come back
/// through the output region. Timing: per-transfer host driver overhead
/// plus fabric streaming cycles plus accelerator compute cycles, all
/// serialized (blocking driver).
///
/// Every call returns an AccelStatus so the executors can stop issuing
/// work the moment something fails. When a FaultInjector is attached the
/// engine additionally runs the self-healing layer: a watchdog on
/// accelerator progress, bounded per-transfer retries with modeled
/// backoff, full re-staging from a replay log after a timeout, and — once
/// the retry budget is exhausted — failover to a protocol-identical spare
/// accelerator or host-CPU fallback execution. Recovery work is charged
/// to dedicated PerfReport counters; the pre-existing counters keep
/// describing the fault-free logical transfer sequence, so a recovered
/// run reports bit-identical base counters (unless it fell back to the
/// CPU, which leaves the fabric timeline entirely).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_DMAENGINE_H
#define AXI4MLIR_SIM_DMAENGINE_H

#include "ir/AccelTraits.h"
#include "sim/AccelStatus.h"
#include "sim/AcceleratorModel.h"
#include "sim/FaultInjector.h"
#include "sim/PerfModel.h"
#include "support/AlignedAlloc.h"

#include <memory>
#include <vector>

namespace axi4mlir {
namespace sim {

/// One DMA engine bound to one accelerator and one perf model.
class DmaEngine {
public:
  DmaEngine(HostPerfModel *Perf, AcceleratorModel *Accel)
      : Perf(Perf), Accel(Accel), ActiveAccel(Accel) {}

  /// Maps the staging regions and configures the engine (one-time cost).
  /// Starts a fresh logical session: the replay log and drain bookkeeping
  /// reset (region sizes may change), error/status state is preserved.
  void init(const accel::DmaInitConfig &Config);
  bool isInitialized() const { return Initialized; }

  /// Host-visible staging buffers (word-addressed).
  uint32_t *inputRegion() { return InputRegion.data(); }
  const uint32_t *inputRegion() const { return InputRegion.data(); }
  size_t inputRegionWords() const { return InputRegion.size(); }
  uint32_t *outputRegion() { return OutputRegion.data(); }
  const uint32_t *outputRegion() const { return OutputRegion.data(); }
  size_t outputRegionWords() const { return OutputRegion.size(); }

  /// Streams \p Words words starting at \p OffsetWords of the input region
  /// to the accelerator. With an injector attached this is where faults
  /// strike and where the recovery layer heals them.
  AccelStatus startSend(size_t Words, size_t OffsetWords);
  AccelStatus waitSendCompletion();

  /// Collects \p Words words from the accelerator into the output region
  /// at \p OffsetWords. Blocks (functionally) until available.
  AccelStatus startRecv(size_t Words, size_t OffsetWords);
  AccelStatus waitRecvCompletion();

  /// Structured view of the engine state. Non-Ok outcomes that recovery
  /// could not absorb latch here (first failure wins); deterministic
  /// protocol errors surface as Fatal.
  AccelStatus status() const {
    if (Sticky != AccelStatus::Ok)
      return Sticky;
    if (ErrorFlag || (ActiveAccel && ActiveAccel->hadError()))
      return AccelStatus::Fatal;
    return AccelStatus::Ok;
  }

  /// True after a protocol error (region overflow, missing output data, or
  /// an accelerator-side error).
  bool hadError() const {
    return ErrorFlag || (ActiveAccel && ActiveAccel->hadError());
  }
  const std::string &errorMessage() const {
    if (!ErrorText.empty() || !ActiveAccel)
      return ErrorText;
    return ActiveAccel->errorMessage();
  }

  /// Records a protocol error raised by the engine or the runtime layer
  /// above it (e.g. a staging copy before dma_init). First message is the
  /// root cause; the flag is sticky.
  void signalError(const std::string &Message) {
    ErrorFlag = true;
    if (ErrorText.empty())
      ErrorText = Message;
  }

  /// The unit currently bound to the stream (the primary until a failover
  /// or CPU fallback switches it).
  AcceleratorModel *accelerator() { return ActiveAccel; }

  //===------------------------------------------------------------------===//
  // Fault injection & recovery
  //===------------------------------------------------------------------===//

  /// Binds \p Injector to the send stream (nullptr detaches). Re-arms the
  /// recovery layer for a fresh run: the active unit switches back to the
  /// primary, used spares reset, the replay log clears. The caller owns
  /// the injector and must also attach it to the accelerator model (see
  /// SoC::attachFaultInjector, which does both).
  void attachFaultInjector(FaultInjector *I);
  FaultInjector *faultInjector() const { return Injector; }

  /// Registers a failover target, ranked by \p Score (lower is better;
  /// ties resolve to the earliest registration). Spares must speak the
  /// exact protocol of the primary — the compiled driver's opcode stream
  /// is replayed onto them verbatim. The caller retains ownership.
  void addSpare(AcceleratorModel *Spare, double Score);
  size_t spareCount() const { return Spares.size(); }

  /// True once a CPU fallback rebound the stream to a host-executed model.
  bool cpuFallbackActive() const { return CpuFallbackActive; }

private:
  AccelStatus latch(AccelStatus Status) {
    if (Sticky == AccelStatus::Ok && Status != AccelStatus::Ok)
      Sticky = Status;
    return Status;
  }

  /// Fabric cycles to stream \p Words over AXI (latency + line rate).
  double streamFabricCycles(size_t Words) const;

  /// Compute cycles land on the fabric timeline, unless the run fell back
  /// to the CPU (host-side fallback counter) or the work is a post-reset
  /// replay of already-accounted bursts (replay counter).
  void chargeComputeCycles(double Cycles, bool Replay);

  /// The recovery-capable send path (taken whenever an injector is
  /// attached): bounded retries, watchdog, degradation.
  AccelStatus sendWithRecovery(size_t Words, size_t OffsetWords);

  /// Resets the active unit and replays every successfully delivered burst
  /// (injection bypassed), then re-drains the words earlier recvs already
  /// consumed. Restores the accelerator to the exact pre-fault state.
  void resetAndReplay();

  /// Retries exhausted: rebinds the stream to the best spare (failover) or
  /// to a fresh host-executed clone (CPU fallback). Returns false when no
  /// target exists. Disables further injection — the faulty unit is out of
  /// rotation.
  bool degradeToNextUnit();

  HostPerfModel *Perf;
  AcceleratorModel *Accel;       ///< the primary unit
  AcceleratorModel *ActiveAccel; ///< the unit currently bound to the stream
  // Line-aligned so the cache model's line-touch counts don't depend on
  // where the heap places the staging regions (support/AlignedAlloc.h).
  AlignedVector<uint32_t> InputRegion;
  AlignedVector<uint32_t> OutputRegion;
  bool Initialized = false;
  bool ErrorFlag = false;
  std::string ErrorText;
  AccelStatus Sticky = AccelStatus::Ok;

  // Recovery state (only populated while an injector is attached).
  FaultInjector *Injector = nullptr;
  struct SpareUnit {
    AcceleratorModel *Model;
    double Score;
    bool Used = false;
  };
  std::vector<SpareUnit> Spares;
  std::unique_ptr<AcceleratorModel> FallbackOwner; ///< CPU-fallback clone
  /// Snapshot of every delivered send burst, for post-timeout re-staging.
  std::vector<std::vector<uint32_t>> ReplayLog;
  /// Output words already drained by recvs (discarded again after replay).
  size_t DrainedWords = 0;
  bool CpuFallbackActive = false;
  /// Set after failover/fallback: the replacement unit is healthy and the
  /// remaining schedule no longer applies.
  bool InjectionDisabled = false;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_DMAENGINE_H
