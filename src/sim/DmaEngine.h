//===- DmaEngine.h - AXI DMA engine model -----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the Zynq AXI DMA engine and its memory-mapped staging regions
/// (paper Fig. 1 and Sec. III-A). The host stages data into the input
/// region (via the runtime's copy_to_dma_region), then dma_start_send
/// streams a burst to the accelerator over AXI-Stream; results come back
/// through the output region. Timing: per-transfer host driver overhead
/// plus fabric streaming cycles plus accelerator compute cycles, all
/// serialized (blocking driver).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_DMAENGINE_H
#define AXI4MLIR_SIM_DMAENGINE_H

#include "ir/AccelTraits.h"
#include "sim/AcceleratorModel.h"
#include "sim/PerfModel.h"
#include "support/AlignedAlloc.h"

#include <memory>
#include <vector>

namespace axi4mlir {
namespace sim {

/// One DMA engine bound to one accelerator and one perf model.
class DmaEngine {
public:
  DmaEngine(HostPerfModel *Perf, AcceleratorModel *Accel)
      : Perf(Perf), Accel(Accel) {}

  /// Maps the staging regions and configures the engine (one-time cost).
  void init(const accel::DmaInitConfig &Config);
  bool isInitialized() const { return Initialized; }

  /// Host-visible staging buffers (word-addressed).
  uint32_t *inputRegion() { return InputRegion.data(); }
  const uint32_t *inputRegion() const { return InputRegion.data(); }
  size_t inputRegionWords() const { return InputRegion.size(); }
  uint32_t *outputRegion() { return OutputRegion.data(); }
  const uint32_t *outputRegion() const { return OutputRegion.data(); }
  size_t outputRegionWords() const { return OutputRegion.size(); }

  /// Streams \p Words words starting at \p OffsetWords of the input region
  /// to the accelerator.
  void startSend(size_t Words, size_t OffsetWords);
  void waitSendCompletion();

  /// Collects \p Words words from the accelerator into the output region
  /// at \p OffsetWords. Blocks (functionally) until available.
  void startRecv(size_t Words, size_t OffsetWords);
  void waitRecvCompletion();

  /// True after a protocol error (region overflow, missing output data, or
  /// an accelerator-side error).
  bool hadError() const { return ErrorFlag || (Accel && Accel->hadError()); }
  const std::string &errorMessage() const {
    if (!ErrorText.empty() || !Accel)
      return ErrorText;
    return Accel->errorMessage();
  }

  AcceleratorModel *accelerator() { return Accel; }

private:
  void signalError(const std::string &Message) {
    ErrorFlag = true;
    if (ErrorText.empty())
      ErrorText = Message;
  }

  HostPerfModel *Perf;
  AcceleratorModel *Accel;
  // Line-aligned so the cache model's line-touch counts don't depend on
  // where the heap places the staging regions (support/AlignedAlloc.h).
  AlignedVector<uint32_t> InputRegion;
  AlignedVector<uint32_t> OutputRegion;
  bool Initialized = false;
  bool ErrorFlag = false;
  std::string ErrorText;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_DMAENGINE_H
