//===- PerfModel.h - Host performance model ---------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HostPerfModel accumulates the perf-style counters the paper reports
/// (task-clock, cache-references, branch-instructions; Figs. 12 & 16) while
/// host code executes against the simulator. The interpreter and the DMA
/// runtime call the on*() hooks; benchmarks read the PerfReport.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_PERFMODEL_H
#define AXI4MLIR_SIM_PERFMODEL_H

#include "sim/CacheSim.h"
#include "sim/CostModel.h"

#include <cstdint>
#include <string>

namespace axi4mlir {
namespace sim {

/// Snapshot of all counters, in perf nomenclature. Following perf's
/// defaults on ARM, `cache-references`/`cache-misses` describe the
/// last-level cache: references = L1D misses that reach the LLC, misses =
/// LLC misses that reach DRAM.
struct PerfReport {
  uint64_t Instructions = 0;
  uint64_t BranchInstructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t L1DAccesses = 0;
  uint64_t CacheReferences = 0; // LLC accesses (== L1D misses).
  uint64_t CacheMisses = 0;     // LLC misses (DRAM accesses).
  double HostCycles = 0;
  double FabricCycles = 0;
  uint64_t DmaTransfers = 0;
  uint64_t DmaBytesMoved = 0;
  double TaskClockMs = 0;

  // Fault-injection / recovery counters (all zero on fault-free runs, so
  // the pre-existing counters above stay bit-identical when no injector
  // is attached). Retry work is charged here, NOT to the counters above:
  // HostCycles/FabricCycles/DmaTransfers keep describing the fault-free
  // logical transfer sequence.
  uint64_t FaultsInjected = 0;       ///< injector events that fired
  uint64_t RecoveryRetries = 0;      ///< bounded per-transfer retries
  double RecoveryBackoffCycles = 0;  ///< modeled host backoff (host domain)
  double WatchdogPollCycles = 0;     ///< watchdog polling (host domain)
  double RecoveryReplayCycles = 0;   ///< re-staged compute (fabric domain)
  uint64_t FailoverEvents = 0;       ///< switches to the spare accelerator
  uint64_t CpuFallbackEvents = 0;    ///< switches to host CPU execution
  double CpuFallbackCycles = 0;      ///< fallback compute (host domain)

  // ExecPlan-cache telemetry (Interpreter LRU + the serve layer's shared
  // cache). Pure counters: they charge no cycles, so runs with identical
  // work keep identical TaskClockMs regardless of cache behaviour.
  uint64_t PlanCacheHits = 0;      ///< compiled plan reused
  uint64_t PlanCacheMisses = 0;    ///< plan compiled (cold or invalidated)
  uint64_t PlanCacheEvictions = 0; ///< LRU entry dropped at capacity

  std::string summary() const;
};

/// The mutable counter accumulator + cache simulator.
class HostPerfModel {
public:
  explicit HostPerfModel(const SoCParams &Params)
      : Params(Params), Cache(Params) {}

  const SoCParams &params() const { return Params; }

  //===------------------------------------------------------------------===//
  // Host-side events
  //===------------------------------------------------------------------===//

  /// A scalar load/store of \p Bytes at \p Address.
  void onScalarLoad(uint64_t Address, unsigned Bytes) {
    ++Loads;
    chargeAccess(Address, Bytes);
  }
  void onScalarStore(uint64_t Address, unsigned Bytes) {
    ++Stores;
    chargeAccess(Address, Bytes);
  }

  /// Plain ALU instruction(s).
  void onArith(uint64_t Count = 1) {
    Instructions += Count;
    HostCycles += static_cast<double>(Count) * Params.CyclesPerInstruction;
  }

  /// A (taken or not) branch instruction.
  void onBranch(uint64_t Count = 1) {
    BranchInstructions += Count;
    onArith(Count);
  }

  /// One loop iteration: induction update + compare + backedge branch.
  void onLoopIteration() {
    onArith(Params.LoopIterationInstructions);
    onBranch();
  }

  /// Batched loop-iteration charge: totals are identical to calling
  /// onLoopIteration() \p Count times (the counters are pure sums), but
  /// the accounting runs in O(1). Used by the strided-copy fast path.
  void onLoopIterations(uint64_t Count) {
    onArith(Count * Params.LoopIterationInstructions);
    onBranch(Count);
  }

  /// A vectorized memcpy of \p Bytes from \p Src to \p Dst (the copy
  /// specialization of paper Sec. IV-B): per-line cache references and
  /// ~one instruction per 16 bytes instead of per element.
  void onMemcpy(uint64_t Dst, uint64_t Src, uint64_t Bytes);

  /// Batched row-block memcpy charge: totals (and cache state, which is
  /// walked row by row in src-then-dst order) are identical to \p Rows
  /// calls of onMemcpy over rows of \p RowBytes spaced \p DstStrideBytes /
  /// \p SrcStrideBytes apart, but the arithmetic counters are computed in
  /// closed form. Lets the strided-copy utility issue one charge per row
  /// block instead of one per row.
  void onMemcpyRows(uint64_t Dst, uint64_t Src, uint64_t RowBytes,
                    uint64_t Rows, uint64_t DstStrideBytes,
                    uint64_t SrcStrideBytes);

  /// Fixed host-cycle charges (DMA driver calls etc.).
  void onHostCycles(uint64_t Cycles) {
    HostCycles += static_cast<double>(Cycles);
  }

  //===------------------------------------------------------------------===//
  // Fabric-side events (charged by the DMA engine / accelerator)
  //===------------------------------------------------------------------===//

  void onFabricCycles(double Cycles) { FabricCycles += Cycles; }
  void onDmaTransfer(uint64_t Bytes) {
    ++DmaTransfers;
    DmaBytesMoved += Bytes;
  }

  //===------------------------------------------------------------------===//
  // Fault-injection / recovery events (DmaEngine recovery layer). These
  // charge dedicated counters so fault-free runs keep every pre-existing
  // counter bit-identical.
  //===------------------------------------------------------------------===//

  void onFaultsInjected(uint64_t Count) { FaultsInjected += Count; }
  void onRecoveryRetry(double BackoffCycles) {
    ++RecoveryRetries;
    RecoveryBackoffCycles += BackoffCycles;
  }
  void onWatchdogPolls(double Cycles) { WatchdogPollCycles += Cycles; }
  void onRecoveryReplay(double Cycles) { RecoveryReplayCycles += Cycles; }
  void onFailover() { ++FailoverEvents; }
  void onCpuFallbackEvent() { ++CpuFallbackEvents; }
  void onCpuFallbackCycles(double Cycles) { CpuFallbackCycles += Cycles; }

  //===------------------------------------------------------------------===//
  // Plan-cache events (Interpreter / serve plan caches). Counters only —
  // no cycle charges, so cache behaviour never perturbs modeled time.
  //===------------------------------------------------------------------===//

  void onPlanCacheHit() { ++PlanCacheHits; }
  void onPlanCacheMiss() { ++PlanCacheMisses; }
  void onPlanCacheEviction() { ++PlanCacheEvictions; }

  //===------------------------------------------------------------------===//
  // Reporting
  //===------------------------------------------------------------------===//

  PerfReport report() const;
  void reset();

private:
  void chargeAccess(uint64_t Address, unsigned Bytes) {
    Instructions += 1 + Params.ScalarAccessExtraInstructions;
    HostCycles += (1.0 + static_cast<double>(
                             Params.ScalarAccessExtraInstructions)) *
                  Params.CyclesPerInstruction;
    HostCycles += static_cast<double>(Cache.access(Address, Bytes));
  }

  SoCParams Params;
  CacheSim Cache;
  uint64_t Instructions = 0;
  uint64_t BranchInstructions = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  double HostCycles = 0;
  double FabricCycles = 0;
  uint64_t DmaTransfers = 0;
  uint64_t DmaBytesMoved = 0;
  uint64_t FaultsInjected = 0;
  uint64_t RecoveryRetries = 0;
  double RecoveryBackoffCycles = 0;
  double WatchdogPollCycles = 0;
  double RecoveryReplayCycles = 0;
  uint64_t FailoverEvents = 0;
  uint64_t CpuFallbackEvents = 0;
  double CpuFallbackCycles = 0;
  uint64_t PlanCacheHits = 0;
  uint64_t PlanCacheMisses = 0;
  uint64_t PlanCacheEvictions = 0;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_PERFMODEL_H
