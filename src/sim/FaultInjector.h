//===- FaultInjector.h - Deterministic SoC fault injection ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable fault injector for the simulated SoC. A
/// FaultPlan is a list of events keyed by *logical* position in the run:
/// DMA faults (drop / truncate / corrupt) fire on the Nth dma_start_send
/// of the run, accelerator faults (transient-error / stall) fire on the
/// Nth opcode the accelerator starts. Keying by logical index (instead of
/// wall-clock or address) is what makes a schedule reproducible across the
/// walker, plan and threaded executors: all three issue the identical
/// runtime-call sequence, so the same plan perturbs the same transfer in
/// each.
///
/// Attempt semantics: an event fires on the first `Attempts` presentations
/// of its index. Retried transfers re-present the same logical index, so
/// `Attempts > MaxRetries` deterministically forces retry exhaustion (the
/// failover / CPU-fallback paths), while the default `Attempts = 1` lets a
/// single bounded retry heal the fault.
///
/// The hooks in DmaEngine / AcceleratorModel are null-pointer checks when
/// no injector is attached, and compile out entirely with
/// -DAXI4MLIR_FAULT_HOOKS=OFF (the bench job's A/B overhead gate).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_FAULTINJECTOR_H
#define AXI4MLIR_SIM_FAULTINJECTOR_H

#include "support/LogicalResult.h"

#include <cstdint>
#include <string>
#include <vector>

namespace axi4mlir {
namespace sim {

#ifdef AXI4MLIR_DISABLE_FAULT_HOOKS
inline constexpr bool kFaultHooksEnabled = false;
#else
inline constexpr bool kFaultHooksEnabled = true;
#endif

/// What goes wrong. Drop/Truncate/Corrupt are DMA-layer faults keyed by
/// send-transfer index; TransientError/Stall are accelerator-side faults
/// keyed by opcode index.
enum class FaultKind {
  DropSend,       ///< burst vanishes on the stream; detected by the watchdog
  TruncateSend,   ///< short transfer; detected by the AXI transfer check
  CorruptWord,    ///< payload word flipped; detected by the AXI data check
  TransientError, ///< accelerator raises a transient error, refuses opcode
  Stall           ///< accelerator FSM stalls for Steps cycles
};

inline bool isDmaFault(FaultKind Kind) {
  return Kind == FaultKind::DropSend || Kind == FaultKind::TruncateSend ||
         Kind == FaultKind::CorruptWord;
}

const char *toString(FaultKind Kind);

struct FaultEvent {
  FaultKind Kind = FaultKind::DropSend;
  /// Logical send index (DMA faults) or opcode index (accelerator faults).
  uint64_t At = 0;
  /// The event fires on the first Attempts presentations of index At.
  uint32_t Attempts = 1;
  /// CorruptWord: which word of the burst flips, and with what mask.
  uint32_t WordIndex = 0;
  uint32_t XorMask = 1;
  /// Stall: FSM stall steps to accrue.
  uint64_t Steps = 0;
  /// Presentations this event already fired on.
  uint32_t Fired = 0;
};

/// Bounds of the self-healing runtime.
struct RecoveryPolicy {
  bool Enabled = true;
  /// Per-transfer bounded retry budget before failover / CPU fallback.
  uint32_t MaxRetries = 3;
  /// Watchdog poll budget: stalls longer than this many polls time out.
  uint64_t WatchdogPolls = 64;
  /// Modeled host backoff per retry (charged to RecoveryBackoffCycles).
  uint64_t BackoffCycles = 200;
  /// Modeled host cost of one watchdog poll.
  uint64_t PollCycles = 10;
};

struct FaultPlan {
  std::vector<FaultEvent> Events;
  RecoveryPolicy Recovery;
  bool empty() const { return Events.empty(); }
};

/// The runtime-side injector: owns a plan plus the logical cursors. The
/// DMA engine queries it per send, the accelerator models per opcode.
class FaultInjector {
public:
  explicit FaultInjector(FaultPlan Plan) : Plan(std::move(Plan)) {}

  /// Consults the plan for the current logical send. Each call models one
  /// physical attempt (so retries consume event attempts); the cursor only
  /// advances on commitSend().
  const FaultEvent *querySend();
  /// Marks the current logical send delivered (or silently dropped).
  void commitSend() { ++SendCursor; }
  uint64_t sendCursor() const { return SendCursor; }

  /// Consults the plan for the opcode the accelerator is about to start.
  /// Auto-commits (advances the opcode cursor) unless the opcode is
  /// refused with a transient error — a refused opcode is re-presented by
  /// the retry, consuming another attempt of the same event.
  const FaultEvent *onOpcode();
  uint64_t opcodeCursor() const { return OpcodeCursor; }

  /// Total events fired so far (feeds the FaultsInjected counter).
  uint64_t faultsFired() const { return TotalFired; }

  const RecoveryPolicy &recovery() const { return Plan.Recovery; }

private:
  FaultEvent *fire(uint64_t Index, bool Dma);

  FaultPlan Plan;
  uint64_t SendCursor = 0;
  uint64_t OpcodeCursor = 0;
  uint64_t TotalFired = 0;
};

/// One-line description of an event for diagnostics ("injected corrupt-word
/// fault (word 3)").
std::string describeFault(const FaultEvent &Event);

/// Deterministic random schedule: \p Count events with indices below
/// \p MaxIndex, kinds and parameters drawn from \p Seed.
FaultPlan makeRandomFaultPlan(uint32_t Seed, unsigned Count,
                              uint64_t MaxIndex);

/// Parses the axi4mlir-opt --faults= spec into \p Plan (appending events /
/// overriding policy fields). Grammar (comma-separated entries):
///   drop@N | truncate@N | corrupt@N[:word=W] | transient@N[:attempts=A]
///   | stall@N:steps=S | rand=SEED:n=COUNT[:max=M]
///   | retries=N | watchdog=N | backoff=N | norecover
/// On failure returns failure and fills \p Error.
LogicalResult parseFaultSpec(const std::string &Spec, FaultPlan &Plan,
                             std::string &Error);

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_FAULTINJECTOR_H
