//===- CacheSim.cpp - Cache simulator implementation ----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"

#include <cassert>

using namespace axi4mlir;
using namespace axi4mlir::sim;

CacheLevel::CacheLevel(int64_t SizeBytes, int64_t Associativity,
                       int64_t LineBytes)
    : LineBytes(LineBytes), Ways(Associativity) {
  assert(SizeBytes > 0 && Associativity > 0 && LineBytes > 0);
  NumSets = static_cast<uint64_t>(SizeBytes / (Associativity * LineBytes));
  assert(NumSets > 0 && "cache too small for its associativity");
  Tags.assign(NumSets * Ways, 0);
}

bool CacheLevel::access(uint64_t Address) {
  uint64_t Line = Address / LineBytes;
  uint64_t Set = Line % NumSets;
  uint64_t Tag = Line / NumSets + 1; // +1 so 0 stays "invalid".
  uint64_t *SetTags = &Tags[Set * Ways];

  for (int64_t Way = 0; Way < Ways; ++Way) {
    if (SetTags[Way] != Tag)
      continue;
    // Hit: move to MRU position.
    for (int64_t I = Way; I > 0; --I)
      SetTags[I] = SetTags[I - 1];
    SetTags[0] = Tag;
    return true;
  }
  // Miss: evict LRU (last way), install as MRU.
  for (int64_t I = Ways - 1; I > 0; --I)
    SetTags[I] = SetTags[I - 1];
  SetTags[0] = Tag;
  return false;
}

void CacheLevel::reset() { Tags.assign(Tags.size(), 0); }

CacheSim::CacheSim(const SoCParams &Params)
    : Params(Params),
      L1(Params.L1SizeBytes, Params.L1Associativity, Params.CacheLineBytes),
      L2(Params.L2SizeBytes, Params.L2Associativity, Params.CacheLineBytes) {}

uint64_t CacheSim::accessLine(uint64_t LineAddress) {
  ++References;
  if (L1.access(LineAddress))
    return 0;
  ++L1Misses;
  if (L2.access(LineAddress))
    return Params.L1MissPenaltyCycles;
  ++L2Misses;
  return Params.L1MissPenaltyCycles + Params.L2MissPenaltyCycles;
}

uint64_t CacheSim::access(uint64_t Address, unsigned Bytes) {
  uint64_t Penalty = accessLine(Address);
  // A straddling scalar access touches the second line too.
  uint64_t FirstLine = Address / Params.CacheLineBytes;
  uint64_t LastLine = (Address + (Bytes ? Bytes - 1 : 0)) /
                      static_cast<uint64_t>(Params.CacheLineBytes);
  if (LastLine != FirstLine)
    Penalty += accessLine(LastLine * Params.CacheLineBytes);
  return Penalty;
}

uint64_t CacheSim::accessRange(uint64_t Address, uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  uint64_t Penalty = 0;
  uint64_t Line = Address / Params.CacheLineBytes;
  uint64_t LastLine = (Address + Bytes - 1) / Params.CacheLineBytes;
  for (; Line <= LastLine; ++Line)
    Penalty += accessLine(Line * Params.CacheLineBytes);
  return Penalty;
}

void CacheSim::reset() {
  L1.reset();
  L2.reset();
  References = 0;
  L1Misses = 0;
  L2Misses = 0;
}
