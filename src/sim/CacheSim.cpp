//===- CacheSim.cpp - Cache simulator implementation ----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "sim/CacheSim.h"

#include <cassert>
#include <cstring>

using namespace axi4mlir;
using namespace axi4mlir::sim;

/// log2 of \p Value when it is a power of two, -1 otherwise.
static int log2IfPow2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0
             ? __builtin_ctzll(Value)
             : -1;
}

CacheLevel::CacheLevel(int64_t SizeBytes, int64_t Associativity,
                       int64_t LineBytes)
    : LineBytes(LineBytes), Ways(Associativity) {
  assert(SizeBytes > 0 && Associativity > 0 && LineBytes > 0);
  NumSets = static_cast<uint64_t>(SizeBytes / (Associativity * LineBytes));
  assert(NumSets > 0 && "cache too small for its associativity");
  LineShift = log2IfPow2(static_cast<uint64_t>(LineBytes));
  SetShift = log2IfPow2(NumSets);
  SetMask = NumSets - 1;
  Tags.assign(NumSets * Ways, 0);
}

bool CacheLevel::access(uint64_t Address) {
  uint64_t Line = LineShift >= 0
                      ? Address >> LineShift
                      : Address / static_cast<uint64_t>(LineBytes);
  uint64_t Set, Tag;
  if (SetShift >= 0) {
    Set = Line & SetMask;
    Tag = (Line >> SetShift) + 1; // +1 so 0 stays "invalid".
  } else {
    Set = Line % NumSets;
    Tag = Line / NumSets + 1;
  }
  uint64_t *SetTags = &Tags[Set * Ways];

  // MRU fast path: repeated accesses to the same line (element sweeps
  // within one cache line) skip the reordering scan entirely.
  if (SetTags[0] == Tag)
    return true;

  for (int64_t Way = 1; Way < Ways; ++Way) {
    if (SetTags[Way] != Tag)
      continue;
    // Hit: move to MRU position.
    std::memmove(SetTags + 1, SetTags, Way * sizeof(uint64_t));
    SetTags[0] = Tag;
    return true;
  }
  // Miss: evict LRU (last way), install as MRU.
  std::memmove(SetTags + 1, SetTags, (Ways - 1) * sizeof(uint64_t));
  SetTags[0] = Tag;
  return false;
}

void CacheLevel::reset() { Tags.assign(Tags.size(), 0); }

CacheSim::CacheSim(const SoCParams &Params)
    : Params(Params),
      L1(Params.L1SizeBytes, Params.L1Associativity, Params.CacheLineBytes),
      L2(Params.L2SizeBytes, Params.L2Associativity, Params.CacheLineBytes),
      LineShift(log2IfPow2(static_cast<uint64_t>(Params.CacheLineBytes))) {}

uint64_t CacheSim::accessLine(uint64_t LineAddress) {
  ++References;
  if (L1.access(LineAddress))
    return 0;
  ++L1Misses;
  if (L2.access(LineAddress))
    return Params.L1MissPenaltyCycles;
  ++L2Misses;
  return Params.L1MissPenaltyCycles + Params.L2MissPenaltyCycles;
}

uint64_t CacheSim::access(uint64_t Address, unsigned Bytes) {
  uint64_t Penalty = accessLine(Address);
  // A straddling scalar access touches the second line too. Line math is
  // a shift for power-of-two lines (the common case), division otherwise.
  uint64_t End = Address + (Bytes ? Bytes - 1 : 0);
  if (LineShift >= 0) {
    uint64_t Shift = static_cast<uint64_t>(LineShift);
    if ((End >> Shift) != (Address >> Shift))
      Penalty += accessLine((End >> Shift) << Shift);
    return Penalty;
  }
  uint64_t LineBytes = static_cast<uint64_t>(Params.CacheLineBytes);
  if (End / LineBytes != Address / LineBytes)
    Penalty += accessLine(End / LineBytes * LineBytes);
  return Penalty;
}

uint64_t CacheSim::accessRange(uint64_t Address, uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  uint64_t Penalty = 0;
  if (LineShift >= 0) {
    uint64_t Shift = static_cast<uint64_t>(LineShift);
    uint64_t Line = Address >> Shift;
    uint64_t LastLine = (Address + Bytes - 1) >> Shift;
    for (; Line <= LastLine; ++Line)
      Penalty += accessLine(Line << Shift);
    return Penalty;
  }
  uint64_t LineBytes = static_cast<uint64_t>(Params.CacheLineBytes);
  uint64_t Line = Address / LineBytes;
  uint64_t LastLine = (Address + Bytes - 1) / LineBytes;
  for (; Line <= LastLine; ++Line)
    Penalty += accessLine(Line * LineBytes);
  return Penalty;
}

void CacheSim::reset() {
  L1.reset();
  L2.reset();
  References = 0;
  L1Misses = 0;
  L2Misses = 0;
}
