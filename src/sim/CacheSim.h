//===- CacheSim.h - Two-level set-associative cache simulator ---*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A functional two-level (L1D + shared L2) write-allocate LRU cache
/// simulator keyed on host virtual addresses. It produces the
/// `cache-references` and `cache-misses` counters the paper reports via
/// perf (Figs. 12 & 16): every L1 access is a cache reference; misses walk
/// into L2 and then DRAM, charging the cost-model penalties.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SIM_CACHESIM_H
#define AXI4MLIR_SIM_CACHESIM_H

#include "sim/CostModel.h"

#include <cstdint>
#include <vector>

namespace axi4mlir {
namespace sim {

/// One set-associative level with LRU replacement.
class CacheLevel {
public:
  CacheLevel(int64_t SizeBytes, int64_t Associativity, int64_t LineBytes);

  /// Accesses the line containing \p Address. Returns true on hit; on miss
  /// the line is installed (write-allocate, no dirty modeling needed for
  /// counter reproduction).
  bool access(uint64_t Address);

  void reset();

  uint64_t getNumSets() const { return NumSets; }

private:
  int64_t LineBytes;
  uint64_t NumSets;
  int64_t Ways;
  /// Shift/mask fast paths when line size and set count are powers of two
  /// (the common configuration); -1 disables and falls back to division.
  /// Purely an implementation speedup — hit/miss behavior is unchanged.
  int LineShift = -1;
  int SetShift = -1;
  uint64_t SetMask = 0;
  /// Tags[set * Ways + way]; 0 = invalid. LRU order per set is maintained
  /// by keeping the most recently used tag first.
  std::vector<uint64_t> Tags;
};

/// The two-level hierarchy with reference/miss counters.
class CacheSim {
public:
  explicit CacheSim(const SoCParams &Params);

  /// Simulates a scalar access of \p Bytes at \p Address (straddling
  /// accesses touch each line once). Returns the miss-penalty cycles.
  uint64_t access(uint64_t Address, unsigned Bytes);

  /// Simulates a bulk access of \p Bytes starting at \p Address, touching
  /// each cache line exactly once — the behaviour of a vectorized memcpy
  /// (paper Sec. IV-B: "there will only be [a couple of] cache references
  /// to fetch the cache line"). Returns total miss-penalty cycles.
  uint64_t accessRange(uint64_t Address, uint64_t Bytes);

  void reset();

  uint64_t getReferences() const { return References; }
  uint64_t getL1Misses() const { return L1Misses; }
  uint64_t getL2Misses() const { return L2Misses; }

private:
  uint64_t accessLine(uint64_t LineAddress);

  SoCParams Params;
  CacheLevel L1;
  CacheLevel L2;
  int LineShift; ///< log2(CacheLineBytes), or -1 for the division path.
  uint64_t References = 0;
  uint64_t L1Misses = 0;
  uint64_t L2Misses = 0;
};

} // namespace sim
} // namespace axi4mlir

#endif // AXI4MLIR_SIM_CACHESIM_H
