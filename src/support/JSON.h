//===- JSON.h - Relaxed JSON parser for configuration files -----*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON reader used to parse the accelerator/CPU
/// configuration files (paper Fig. 5). The dialect is deliberately relaxed
/// to match the paper's sample config:
///   * `=` is accepted in place of `:` after object keys;
///   * bare identifiers (`data`, `int32`, `m`) parse as strings;
///   * size suffixes (`32K`, `512K`, `4M`) parse as integers;
///   * hexadecimal integers (`0xFF00`) are accepted;
///   * trailing commas and `//` line comments are tolerated.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_JSON_H
#define AXI4MLIR_SUPPORT_JSON_H

#include "support/LogicalResult.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace axi4mlir {
namespace json {

/// A parsed JSON value. Objects preserve key insertion order.
class Value {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Value() : TheKind(Kind::Null) {}
  explicit Value(bool B) : TheKind(Kind::Bool), BoolVal(B) {}
  explicit Value(int64_t I) : TheKind(Kind::Int), IntVal(I) {}
  explicit Value(double D) : TheKind(Kind::Double), DoubleVal(D) {}
  explicit Value(std::string S)
      : TheKind(Kind::String), StringVal(std::move(S)) {}

  static Value makeArray() {
    Value V;
    V.TheKind = Kind::Array;
    return V;
  }
  static Value makeObject() {
    Value V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isDouble() const { return TheKind == Kind::Double; }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool() const { return BoolVal; }
  int64_t asInt() const { return TheKind == Kind::Double
                                     ? static_cast<int64_t>(DoubleVal)
                                     : IntVal; }
  double asDouble() const {
    return TheKind == Kind::Int ? static_cast<double>(IntVal) : DoubleVal;
  }
  const std::string &asString() const { return StringVal; }

  std::vector<Value> &array() { return ArrayVal; }
  const std::vector<Value> &array() const { return ArrayVal; }

  /// Object access. get() returns nullptr for a missing key.
  const Value *get(const std::string &Key) const;
  void set(const std::string &Key, Value V);
  const std::vector<std::pair<std::string, Value>> &members() const {
    return ObjectVal;
  }

  /// Convenience typed lookups that return a fallback on missing/mismatched
  /// entries.
  int64_t getInt(const std::string &Key, int64_t Default = 0) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;

private:
  Kind TheKind;
  bool BoolVal = false;
  int64_t IntVal = 0;
  double DoubleVal = 0.0;
  std::string StringVal;
  std::vector<Value> ArrayVal;
  std::vector<std::pair<std::string, Value>> ObjectVal;
};

/// Parses \p Text. On failure returns failure and fills \p ErrorMessage
/// (if non-null) with a line/column annotated description.
FailureOr<Value> parse(const std::string &Text,
                       std::string *ErrorMessage = nullptr);

} // namespace json
} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_JSON_H
