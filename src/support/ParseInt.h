//===- ParseInt.h - Checked int64 parsing -----------------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one overflow-checked signed-64-bit digit parse shared by every
/// textual frontend (the IR lexer, the opcode grammars): full-consumption
/// via from_chars, magnitude accumulated unsigned so INT64_MIN
/// round-trips, and saturation rejected rather than clamped.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_PARSEINT_H
#define AXI4MLIR_SUPPORT_PARSEINT_H

#include <charconv>
#include <cstdint>

namespace axi4mlir {

/// Parses the digit run [\p First, \p Last) — sign already stripped by the
/// caller and passed as \p Negative — in base \p Base into \p Out.
/// Returns false when the run is not fully consumed or the value does not
/// fit int64 (instead of saturating the way strtoll does).
inline bool parseCheckedInt64(const char *First, const char *Last,
                              bool Negative, int Base, int64_t &Out) {
  uint64_t Magnitude = 0;
  auto [End, Errc] = std::from_chars(First, Last, Magnitude, Base);
  uint64_t Limit = Negative
                       ? static_cast<uint64_t>(
                             -static_cast<uint64_t>(INT64_MIN))
                       : static_cast<uint64_t>(INT64_MAX);
  if (Errc != std::errc() || End != Last || Magnitude > Limit)
    return false;
  // INT64_MIN's magnitude cannot be negated in the signed domain.
  if (Negative)
    Out = Magnitude == static_cast<uint64_t>(INT64_MAX) + 1
              ? INT64_MIN
              : -static_cast<int64_t>(Magnitude);
  else
    Out = static_cast<int64_t>(Magnitude);
  return true;
}

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_PARSEINT_H
