//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of LLVM's opt-in RTTI helpers (isa<>, cast<>,
/// dyn_cast<>) used throughout the IR and dialect op-view classes. A class
/// participates by providing a static `bool classof(const From *)` member.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_CASTING_H
#define AXI4MLIR_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace axi4mlir {

/// Returns true if \p Val is an instance of the target class \p To.
template <typename To, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is an instance of any listed class.
template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast; asserts on kind mismatch.
template <typename To, typename From>
To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<To *>(Val);
}

template <typename To, typename From>
const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible kind");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns nullptr on kind mismatch.
template <typename To, typename From>
To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Null-tolerant variants.
template <typename To, typename From>
To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_CASTING_H
