//===- AlignedAlloc.h - Cache-line-aligned allocation -----------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cache-line-aligned storage allocator, shared by every buffer the cache
/// simulator can observe. The simulator is keyed on real host addresses,
/// so aligning a buffer to a line boundary makes line-touch counts
/// independent of where the heap happens to place the allocation —
/// modeled counters stay identical run to run (ExecPlanTest asserts this
/// for mid-execution staging allocations; RoundTripTest relies on it to
/// compare counters across two executions in one process).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_ALIGNEDALLOC_H
#define AXI4MLIR_SUPPORT_ALIGNEDALLOC_H

#include <cstddef>
#include <new>
#include <vector>

namespace axi4mlir {

template <typename T> struct CacheLineAllocator {
  using value_type = T;
  static constexpr std::align_val_t Alignment{64};

  CacheLineAllocator() = default;
  template <typename U>
  CacheLineAllocator(const CacheLineAllocator<U> &) noexcept {}

  T *allocate(size_t N) {
    return static_cast<T *>(::operator new(N * sizeof(T), Alignment));
  }
  void deallocate(T *P, size_t) noexcept {
    ::operator delete(P, Alignment);
  }
  template <typename U>
  bool operator==(const CacheLineAllocator<U> &) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheLineAllocator<U> &) const noexcept {
    return false;
  }
};

/// A std::vector whose storage starts on a cache-line boundary.
template <typename T>
using AlignedVector = std::vector<T, CacheLineAllocator<T>>;

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_ALIGNEDALLOC_H
