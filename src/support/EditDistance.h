//===- EditDistance.h - Levenshtein distance for CLI suggestions -*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plain Levenshtein edit distance plus a "did you mean" helper used by the
/// command-line tools: an unknown `--flag` is matched against the valid
/// flag set and the closest candidate (within a sane distance budget) is
/// suggested in the diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_EDITDISTANCE_H
#define AXI4MLIR_SUPPORT_EDITDISTANCE_H

#include <algorithm>
#include <string>
#include <vector>

namespace axi4mlir {

/// Classic O(|A|*|B|) Levenshtein distance (unit insert/delete/substitute
/// costs) with a rolling single-row table.
inline size_t editDistance(const std::string &A, const std::string &B) {
  if (A.empty())
    return B.size();
  if (B.empty())
    return A.size();
  std::vector<size_t> Row(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Row[J] = J;
  for (size_t I = 1; I <= A.size(); ++I) {
    size_t Diagonal = Row[0];
    Row[0] = I;
    for (size_t J = 1; J <= B.size(); ++J) {
      size_t Substitute = Diagonal + (A[I - 1] == B[J - 1] ? 0 : 1);
      Diagonal = Row[J];
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Substitute});
    }
  }
  return Row[B.size()];
}

/// Returns the candidate closest to \p Unknown when its distance is at
/// most \p MaxDistance (ties break towards the earlier candidate), or an
/// empty string when nothing is close enough to be a plausible typo.
inline std::string
closestSpelling(const std::string &Unknown,
                const std::vector<std::string> &Candidates,
                size_t MaxDistance = 3) {
  std::string Best;
  size_t BestDistance = MaxDistance + 1;
  for (const std::string &Candidate : Candidates) {
    size_t Distance = editDistance(Unknown, Candidate);
    if (Distance < BestDistance) {
      BestDistance = Distance;
      Best = Candidate;
    }
  }
  return Best;
}

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_EDITDISTANCE_H
