//===- LogicalResult.h - MLIR-style success/failure results -----*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LogicalResult / FailureOr<T>, mirroring mlir/Support/LogicalResult.h.
/// Used as the return type of verifiers, parsers and passes, avoiding
/// exceptions per the LLVM coding standards.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_LOGICALRESULT_H
#define AXI4MLIR_SUPPORT_LOGICALRESULT_H

#include <cassert>
#include <optional>
#include <utility>

namespace axi4mlir {

/// Boolean-like result of an operation that can fail. Use the free functions
/// success()/failure() to construct, and succeeded()/failed() to query.
class LogicalResult {
public:
  static LogicalResult success(bool IsSuccess = true) {
    return LogicalResult(IsSuccess);
  }
  static LogicalResult failure(bool IsFailure = true) {
    return LogicalResult(!IsFailure);
  }

  bool succeeded() const { return IsSuccess; }
  bool failed() const { return !IsSuccess; }

private:
  explicit LogicalResult(bool IsSuccess) : IsSuccess(IsSuccess) {}
  bool IsSuccess;
};

inline LogicalResult success(bool IsSuccess = true) {
  return LogicalResult::success(IsSuccess);
}
inline LogicalResult failure(bool IsFailure = true) {
  return LogicalResult::failure(IsFailure);
}
inline bool succeeded(LogicalResult Result) { return Result.succeeded(); }
inline bool failed(LogicalResult Result) { return Result.failed(); }

/// A LogicalResult that, on success, carries a value of type T.
template <typename T>
class FailureOr : public std::optional<T> {
public:
  FailureOr() : std::optional<T>() {}
  FailureOr(LogicalResult Result) {
    assert(failed(Result) &&
           "success should be constructed with an actual value");
    (void)Result;
  }
  FailureOr(T &&Value) : std::optional<T>(std::forward<T>(Value)) {}
  FailureOr(const T &Value) : std::optional<T>(Value) {}

  operator LogicalResult() const { return success(this->has_value()); }
};

template <typename T>
bool succeeded(const FailureOr<T> &Result) {
  return Result.has_value();
}
template <typename T>
bool failed(const FailureOr<T> &Result) {
  return !Result.has_value();
}

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_LOGICALRESULT_H
