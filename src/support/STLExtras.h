//===- STLExtras.h - Small STL helper utilities -----------------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assorted helpers in the spirit of llvm/ADT/STLExtras.h: interleave,
/// enumerate-free joins, and simple numeric utilities shared across modules.
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_SUPPORT_STLEXTRAS_H
#define AXI4MLIR_SUPPORT_STLEXTRAS_H

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace axi4mlir {

/// Calls \p EachFn for every element of \p Range, calling \p BetweenFn
/// between consecutive elements (llvm::interleave).
template <typename Range, typename EachFn, typename BetweenFn>
void interleave(const Range &TheRange, EachFn Each, BetweenFn Between) {
  bool First = true;
  for (const auto &Element : TheRange) {
    if (!First)
      Between();
    First = false;
    Each(Element);
  }
}

/// Joins the elements of \p Values with \p Sep using operator<<.
template <typename T>
std::string join(const std::vector<T> &Values, const std::string &Sep) {
  std::ostringstream OS;
  interleave(
      Values, [&](const T &V) { OS << V; }, [&] { OS << Sep; });
  return OS.str();
}

/// Integer ceiling division; requires Divisor > 0.
inline int64_t ceilDiv(int64_t Numerator, int64_t Divisor) {
  return (Numerator + Divisor - 1) / Divisor;
}

/// Rounds \p Value down to the nearest multiple of \p Factor (>= Factor).
inline int64_t roundDownToMultiple(int64_t Value, int64_t Factor) {
  int64_t Result = (Value / Factor) * Factor;
  return Result < Factor ? Factor : Result;
}

/// Computes the product of a shape vector.
inline int64_t product(const std::vector<int64_t> &Shape) {
  int64_t Result = 1;
  for (int64_t Dim : Shape)
    Result *= Dim;
  return Result;
}

} // namespace axi4mlir

#endif // AXI4MLIR_SUPPORT_STLEXTRAS_H
