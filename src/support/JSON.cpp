//===- JSON.cpp - Relaxed JSON parser implementation ----------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

using namespace axi4mlir;
using namespace axi4mlir::json;

const Value *Value::get(const std::string &Key) const {
  for (const auto &[Name, Member] : ObjectVal)
    if (Name == Key)
      return &Member;
  return nullptr;
}

void Value::set(const std::string &Key, Value V) {
  for (auto &[Name, Member] : ObjectVal) {
    if (Name == Key) {
      Member = std::move(V);
      return;
    }
  }
  ObjectVal.emplace_back(Key, std::move(V));
}

int64_t Value::getInt(const std::string &Key, int64_t Default) const {
  const Value *V = get(Key);
  if (!V || !(V->isInt() || V->isDouble()))
    return Default;
  return V->asInt();
}

std::string Value::getString(const std::string &Key,
                             const std::string &Default) const {
  const Value *V = get(Key);
  return V && V->isString() ? V->asString() : Default;
}

namespace {

/// Recursive-descent reader over the relaxed JSON dialect.
class Lexer {
public:
  Lexer(const std::string &Text) : Text(Text) {}

  /// Current position rendered as "line L column C" for diagnostics.
  std::string locationString() const {
    unsigned Line = 1, Column = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
    std::ostringstream OS;
    OS << "line " << Line << " column " << Column;
    return OS.str();
  }

  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '/' && Pos + 1 < Text.size() && Text[Pos + 1] == '/') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  bool atEnd() {
    skipWhitespaceAndComments();
    return Pos >= Text.size();
  }

  char peek() {
    skipWhitespaceAndComments();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consumeIf(char C) {
    if (peek() != C)
      return false;
    ++Pos;
    return true;
  }

  /// Reads a double-quoted string (no escape support needed for configs,
  /// but \" and \\ are handled).
  FailureOr<std::string> readQuotedString() {
    if (!consumeIf('"'))
      return failure();
    std::string Result;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size())
        C = Text[Pos++];
      Result.push_back(C);
    }
    if (Pos >= Text.size())
      return failure();
    ++Pos; // closing quote
    return Result;
  }

  /// Reads a bare word: identifiers, numbers with size suffixes, hex.
  std::string readBareWord() {
    skipWhitespaceAndComments();
    std::string Result;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.' || C == '-' || C == '+') {
        Result.push_back(C);
        ++Pos;
      } else {
        break;
      }
    }
    return Result;
  }

  const std::string &Text;
  size_t Pos = 0;
};

class Parser {
public:
  Parser(const std::string &Text) : Lex(Text) {}

  FailureOr<Value> parseValue() {
    char C = Lex.peek();
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      auto Str = Lex.readQuotedString();
      if (failed(Str))
        return error("unterminated string");
      return Value(*Str);
    }
    return parseBare();
  }

  std::string ErrorMessage;

private:
  FailureOr<Value> error(const std::string &Message) {
    if (ErrorMessage.empty())
      ErrorMessage = Message + " at " + Lex.locationString();
    return failure();
  }

  /// Parses object member keys: quoted strings or bare identifiers.
  FailureOr<std::string> parseKey() {
    if (Lex.peek() == '"') {
      auto Str = Lex.readQuotedString();
      if (failed(Str)) {
        error("unterminated key string");
        return failure();
      }
      return *Str;
    }
    std::string Word = Lex.readBareWord();
    if (Word.empty()) {
      error("expected object key");
      return failure();
    }
    return Word;
  }

  FailureOr<Value> parseObject() {
    Lex.consumeIf('{');
    Value Result = Value::makeObject();
    if (Lex.consumeIf('}'))
      return Result;
    while (true) {
      auto Key = parseKey();
      if (failed(Key))
        return failure();
      // Accept both ':' and '=' as key separators (the paper's sample config
      // mixes the two).
      if (!Lex.consumeIf(':') && !Lex.consumeIf('='))
        return error("expected ':' or '=' after object key");
      auto Member = parseValue();
      if (failed(Member))
        return failure();
      Result.set(*Key, std::move(*Member));
      if (Lex.consumeIf(',')) {
        if (Lex.consumeIf('}')) // trailing comma
          return Result;
        continue;
      }
      if (Lex.consumeIf('}'))
        return Result;
      return error("expected ',' or '}' in object");
    }
  }

  FailureOr<Value> parseArray() {
    Lex.consumeIf('[');
    Value Result = Value::makeArray();
    if (Lex.consumeIf(']'))
      return Result;
    while (true) {
      auto Element = parseValue();
      if (failed(Element))
        return failure();
      Result.array().push_back(std::move(*Element));
      if (Lex.consumeIf(',')) {
        if (Lex.consumeIf(']')) // trailing comma
          return Result;
        continue;
      }
      if (Lex.consumeIf(']'))
        return Result;
      return error("expected ',' or ']' in array");
    }
  }

  /// Bare tokens: true/false/null, integers (decimal/hex/size-suffixed),
  /// doubles, or identifier strings.
  FailureOr<Value> parseBare() {
    std::string Word = Lex.readBareWord();
    if (Word.empty())
      return error("expected a value");
    if (Word == "true")
      return Value(true);
    if (Word == "false")
      return Value(false);
    if (Word == "null")
      return Value();

    // Hexadecimal.
    if (Word.size() > 2 && Word[0] == '0' &&
        (Word[1] == 'x' || Word[1] == 'X')) {
      char *End = nullptr;
      int64_t IntValue = std::strtoll(Word.c_str(), &End, 16);
      if (End && *End == '\0')
        return Value(IntValue);
    }

    // Size-suffixed integer: 32K, 512K, 4M, 1G.
    if (Word.size() >= 2) {
      char Suffix = Word.back();
      int64_t Scale = Suffix == 'K'   ? 1024
                      : Suffix == 'M' ? 1024 * 1024
                      : Suffix == 'G' ? 1024LL * 1024 * 1024
                                      : 0;
      if (Scale != 0) {
        char *End = nullptr;
        std::string Digits = Word.substr(0, Word.size() - 1);
        int64_t IntValue = std::strtoll(Digits.c_str(), &End, 10);
        if (End && *End == '\0' && !Digits.empty())
          return Value(IntValue * Scale);
      }
    }

    // Plain integer.
    {
      char *End = nullptr;
      int64_t IntValue = std::strtoll(Word.c_str(), &End, 10);
      if (End && *End == '\0')
        return Value(IntValue);
    }
    // Double.
    {
      char *End = nullptr;
      double DoubleValue = std::strtod(Word.c_str(), &End);
      if (End && *End == '\0' && Word.find_first_of(".eE") != std::string::npos)
        return Value(DoubleValue);
    }
    // Fallback: identifier-string (e.g. int32, data, m).
    return Value(Word);
  }

  Lexer Lex;
};

} // namespace

FailureOr<Value> json::parse(const std::string &Text,
                             std::string *ErrorMessage) {
  Parser P(Text);
  auto Result = P.parseValue();
  if (failed(Result)) {
    if (ErrorMessage)
      *ErrorMessage = P.ErrorMessage;
    return failure();
  }
  return Result;
}
