// 16x16 input, 4->8 channels, 3x3 filter, stride-1 i32 convolution.
// Run: axi4mlir-opt --config configs/conv2d.json --input examples/conv2d.mlir --run
func.func() ({
^bb(%arg0: memref<1x4x16x16xi32>, %arg1: memref<8x4x3x3xi32>, %arg2: memref<1x8x14x14xi32>):
  linalg.conv_2d_nchw_fchw(%arg0, %arg1, %arg2) {num_inputs = 2, strides = [1, 1]} : (memref<1x4x16x16xi32>, memref<8x4x3x3xi32>, memref<1x8x14x14xi32>) -> ()
  func.return() : () -> ()
}) {function_type = (memref<1x4x16x16xi32>, memref<8x4x3x3xi32>, memref<1x8x14x14xi32>) -> (), sym_name = "conv_call"} : () -> ()
