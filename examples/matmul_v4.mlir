// 64x48x32 i32 matmul workload in the generic textual form.
// Run: axi4mlir-opt --config configs/matmul_v4_16_flex.json --input examples/matmul_v4.mlir --run
func.func() ({
^bb(%arg0: memref<64x32xi32>, %arg1: memref<32x48xi32>, %arg2: memref<64x48xi32>):
  linalg.matmul(%arg0, %arg1, %arg2) {num_inputs = 2} : (memref<64x32xi32>, memref<32x48xi32>, memref<64x48xi32>) -> ()
  func.return() : () -> ()
}) {function_type = (memref<64x32xi32>, memref<32x48xi32>, memref<64x48xi32>) -> (), sym_name = "matmul_call"} : () -> ()
