//===- matmul_flows.cpp - Comparing stationary dataflows ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain example: a machine-learning GEMM offloaded with each dataflow
/// the v3 accelerator supports (Ns/As/Bs/Cs). Shows how the same
/// application + accelerator pair yields different host drivers (and
/// performance) purely by editing `selected_flow` in the config file —
/// the paper's core usability claim.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <iostream>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  std::cout << "GEMM 128x128x128 on the v3_16 accelerator, one run per "
               "selected_flow:\n\n";
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = 128;
  Config.Version = V::V3;
  Config.AccelSize = 16;

  double ManualMs = 0;
  {
    Config.Flow = "Ns";
    RunResult Manual = runMatMulManual(Config);
    if (!Manual.Ok) {
      std::cerr << "manual baseline failed: " << Manual.Error << "\n";
      return 1;
    }
    ManualMs = Manual.Report.TaskClockMs;
    std::cout << "cpp_MANUAL (Ns):   task-clock " << ManualMs << " ms\n";
  }

  for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
    Config.Flow = Flow;
    RunResult Result = runMatMulAxi4mlir(Config);
    if (!Result.Ok || !Result.NumericsMatch) {
      std::cerr << Flow << " failed: " << Result.Error << "\n";
      return 1;
    }
    std::cout << "AXI4MLIR (" << Flow << "):     task-clock "
              << Result.Report.TaskClockMs << " ms  (" << ManualMs /
                     Result.Report.TaskClockMs
              << "x vs manual, " << Result.Report.DmaBytesMoved
              << " B moved)\n";
  }
  std::cout << "\nStationary flows move less data; all of them validate "
               "against the reference kernel.\n";
  return 0;
}
