//===- conv_resnet_layer.cpp - Offloading a ResNet convolution ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain example: a ResNet18 convolution layer
/// (58x58, 64 input channels, 3x3 filters, 128 output channels, stride 2)
/// offloaded to the runtime-configurable Conv2D accelerator (paper
/// Sec. IV-D). Demonstrates the init-opcode mechanism: the generated
/// driver first configures the engine's filter size and channel count via
/// `rst` (send_dim actions), then streams filter slices and input windows
/// with an output-stationary flow.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <iostream>

using namespace axi4mlir;
using namespace axi4mlir::exec;

int main() {
  ConvRunConfig Config;
  Config.InHW = 57; // valid-convolution equivalent of the padded 58x58
  Config.InChannels = 64;
  Config.FilterHW = 3;
  Config.OutChannels = 128;
  Config.Stride = 2;

  std::cout << "ResNet18 layer 58_64_3_128_2 on the Conv2D accelerator\n";

  RunResult Manual = runConvManual(Config);
  if (!Manual.Ok || !Manual.NumericsMatch) {
    std::cerr << "manual driver failed: " << Manual.Error << "\n";
    return 1;
  }
  std::cout << "cpp_MANUAL: " << Manual.Report.summary() << "\n";

  RunResult Generated = runConvAxi4mlir(Config);
  if (!Generated.Ok || !Generated.NumericsMatch) {
    std::cerr << "AXI4MLIR driver failed: " << Generated.Error << "\n";
    return 1;
  }
  std::cout << "AXI4MLIR:   " << Generated.Report.summary() << "\n";
  std::cout << "speedup: "
            << Manual.Report.TaskClockMs / Generated.Report.TaskClockMs
            << "x (numerics validated on both paths)\n";
  return 0;
}
