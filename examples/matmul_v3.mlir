// 60x72x80 i32 matmul workload in the generic textual form.
// Run: axi4mlir-opt --config configs/matmul_v3_4.json --input examples/matmul_v3.mlir --run
func.func() ({
^bb(%arg0: memref<60x80xi32>, %arg1: memref<80x72xi32>, %arg2: memref<60x72xi32>):
  linalg.matmul(%arg0, %arg1, %arg2) {num_inputs = 2} : (memref<60x80xi32>, memref<80x72xi32>, memref<60x72xi32>) -> ()
  func.return() : () -> ()
}) {function_type = (memref<60x80xi32>, memref<80x72xi32>, memref<60x72xi32>) -> (), sym_name = "matmul_call"} : () -> ()
