//===- design_space_explorer.cpp - v4 flexible-tiling exploration ---------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Domain example: the co-design loop of paper Sec. IV-C. For a tall/
/// skinny scientific-workload GEMM, enumerate (flow, tile) configurations
/// of the runtime-configurable v4 accelerator, rank them with the
/// data-movement estimator, and confirm the ranking by running the top
/// candidates through the full pipeline on the simulator — the per-problem
/// exploration that is "very time-consuming" to do with hand-written
/// drivers.
///
//===----------------------------------------------------------------------===//

#include "exec/Heuristics.h"
#include "exec/Pipeline.h"

#include <algorithm>
#include <iostream>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  // A tall/skinny problem: M >> N (e.g. a batched projection).
  const int64_t M = 512, N = 32, K = 256;
  const int64_t CapacityWords = 16 * 16 * 16;
  std::cout << "Exploring v4_16 configurations for MatMul " << M << "x" << N
            << "x" << K << "\n\n";

  // Rank a few interesting candidates by estimated data movement.
  std::vector<FlowTilingChoice> Candidates;
  for (const char *Flow : {"Ns", "As", "Bs", "Cs"})
    Candidates.push_back(chooseSquareTile(M, N, K, Flow, CapacityWords));
  Candidates.push_back(chooseBestFlexible(M, N, K, CapacityWords));

  std::sort(Candidates.begin(), Candidates.end(),
            [](const FlowTilingChoice &LHS, const FlowTilingChoice &RHS) {
              return LHS.MovedElements < RHS.MovedElements;
            });

  std::cout << "flow  tiles (tM,tN,tK)   est. moved elems   measured ms\n";
  for (const FlowTilingChoice &Choice : Candidates) {
    MatMulRunConfig Config;
    Config.M = M;
    Config.N = N;
    Config.K = K;
    Config.Version = V::V4;
    Config.AccelSize = 16;
    Config.Flow = Choice.Flow;
    Config.TileM = Choice.TileM;
    Config.TileN = Choice.TileN;
    Config.TileK = Choice.TileK;
    RunResult Result = runMatMulAxi4mlir(Config);
    if (!Result.Ok || !Result.NumericsMatch) {
      std::cerr << "run failed: " << Result.Error << "\n";
      return 1;
    }
    std::cout << Choice.Flow << "    (" << Choice.TileM << ", "
              << Choice.TileN << ", " << Choice.TileK << ")"
              << std::string(
                     Choice.TileM >= 100 || Choice.TileK >= 100 ? 6 : 8, ' ')
              << Choice.MovedElements << "            "
              << Result.Report.TaskClockMs << "\n";
  }
  std::cout << "\nLower estimated movement tracks lower measured "
               "task-clock; the flexible configuration wins.\n";
  return 0;
}
