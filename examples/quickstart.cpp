//===- quickstart.cpp - AXI4MLIR reproduction quickstart ------------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour: describe an accelerator in a config file, build a
/// linalg.matmul, watch the compiler annotate/tile/place communication ops
/// and lower them to DMA runtime calls, inspect the generated C driver,
/// and execute against the simulated PYNQ-style board.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"

#include <iostream>

using namespace axi4mlir;
using V = sim::MatMulAccelerator::Version;

int main() {
  // 1. The user describes the accelerator + host in a config file
  //    (paper Fig. 5). Here: a v3 8x8x8 MatMul engine, A-stationary flow.
  std::string ConfigJson =
      exec::makeMatMulConfigJson(V::V3, /*Size=*/8, /*Flow=*/"As");
  std::cout << "--- accelerator configuration (JSON) ---\n"
            << ConfigJson << "\n";
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(ConfigJson);

  // 2. The application: a 32x32x32 matmul in the linalg abstraction.
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, 32, 32, 32, sim::ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::cout << "--- input IR ---\n" << *Func.getOperation() << "\n";

  // 3. Run the AXI4MLIR pipeline (paper Fig. 4).
  transforms::LoweringOptions Options;
  std::string Error;
  transforms::PassManager Pipeline = transforms::buildPipeline(Accel,
                                                               Options);
  if (failed(Pipeline.run(Func, Error))) {
    std::cerr << "pipeline failed: " << Error << "\n";
    return 1;
  }
  std::cout << "--- lowered host driver IR (runtime calls) ---\n"
            << *Func.getOperation() << "\n";

  // 4. Emit the equivalent C driver you would cross-compile on a board.
  if (auto CSource = codegen::emitC(Func, &Error); succeeded(CSource))
    std::cout << "--- generated C driver ---\n" << *CSource << "\n";

  // 5. Execute against the simulated SoC and validate the numerics.
  auto Soc = sim::makeMatMulSoC(V::V3, 8);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  runtime::MemRefDesc A = runtime::MemRefDesc::alloc({32, 32});
  runtime::MemRefDesc B = runtime::MemRefDesc::alloc({32, 32});
  runtime::MemRefDesc C = runtime::MemRefDesc::alloc({32, 32});
  exec::fillRandom(A, 1);
  exec::fillRandom(B, 2);
  runtime::MemRefDesc Expected = exec::cloneMemRef(C);

  exec::Interpreter Interp(*Soc, &Runtime);
  if (failed(Interp.run(Func, {A, B, C}, Error))) {
    std::cerr << "execution failed: " << Error << "\n";
    return 1;
  }
  exec::referenceMatMul(A, B, Expected);
  std::cout << "--- execution ---\nnumerics match reference: "
            << (exec::memrefEquals(Expected, C) ? "yes" : "NO") << "\n"
            << Soc->report().summary() << "\n";
  return 0;
}
