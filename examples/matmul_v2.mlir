// 32x16x24 i32 matmul workload in the generic textual form.
// Run: axi4mlir-opt --config configs/matmul_v2_4.json --input examples/matmul_v2.mlir --run
func.func() ({
^bb(%arg0: memref<32x24xi32>, %arg1: memref<24x16xi32>, %arg2: memref<32x16xi32>):
  linalg.matmul(%arg0, %arg1, %arg2) {num_inputs = 2} : (memref<32x24xi32>, memref<24x16xi32>, memref<32x16xi32>) -> ()
  func.return() : () -> ()
}) {function_type = (memref<32x24xi32>, memref<24x16xi32>, memref<32x16xi32>) -> (), sym_name = "matmul_call"} : () -> ()
