//===- fig10_relevance.cpp - Paper Fig. 10: CPU vs accelerator ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 10: task-clock of CPU execution (mlir_CPU) vs
/// manual accelerator offload (cpp_MANUAL, Ns flow) across problem sizes
/// (dims = M = N = K) and v1 accelerator sizes. Expected shape: the
/// accelerator only becomes relevant for dims >= 64 and accel size >= 8.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  printHeader("Fig. 10: runtime characterization CPU vs accelerator "
              "(task-clock in ms, lower is better)");
  std::printf("%-28s %14s\n", "(dims, accel_size, version)", "task-clock");

  for (int64_t Dims : {16, 32, 64, 128, 256}) {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = Dims;
    Config.Validate = Dims <= 64;
    {
      sim::PerfReport R = mustRun(runMatMulCpuOnly, Config, "mlir_CPU");
      std::printf("(%4lld, %2d, %-6s) %20.3f ms   [mlir_CPU]\n",
                  static_cast<long long>(Dims), 0, "NONE", R.TaskClockMs);
    }
    for (int64_t Size : {4, 8, 16}) {
      Config.Version = V::V1;
      Config.AccelSize = Size;
      Config.Flow = "Ns";
      sim::PerfReport R = mustRun(runMatMulManual, Config, "cpp_MANUAL");
      std::printf("(%4lld, %2lld, %-6s) %20.3f ms   [cpp_MANUAL]\n",
                  static_cast<long long>(Dims),
                  static_cast<long long>(Size), "v1", R.TaskClockMs);
    }
  }
  std::printf("\nExpected (paper): accelerator beats CPU only for dims >= "
              "64 with accel size >= 8.\n");
  return 0;
}
