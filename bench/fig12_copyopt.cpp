//===- fig12_copyopt.cpp - Paper Fig. 12: copy specialization effect ------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Figs. 12a/12b: branch-instructions, cache-references
/// and task-clock of the v3_16 accelerator at dims == 128, for manual Ns
/// and AXI4MLIR Ns/As/Bs/Cs, normalized to the CPU-only execution —
/// without (a) and with (b) the MemRef-DMA copy specialization.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

namespace {

void printNormalized(const char *Label, const sim::PerfReport &R,
                     const sim::PerfReport &Cpu) {
  std::printf("  %-22s branch %6.1f%% | cache-refs %6.1f%% | "
              "task-clock %6.1f%%\n",
              Label,
              100.0 * static_cast<double>(R.BranchInstructions) /
                  static_cast<double>(Cpu.BranchInstructions),
              100.0 * static_cast<double>(R.CacheReferences) /
                  static_cast<double>(Cpu.CacheReferences),
              100.0 * R.TaskClockMs / Cpu.TaskClockMs);
}

} // namespace

int main() {
  const int64_t Dims = 128;
  MatMulRunConfig Config;
  Config.M = Config.N = Config.K = Dims;
  Config.Version = V::V3;
  Config.AccelSize = 16;
  Config.Validate = false;

  sim::PerfReport Cpu = mustRun(runMatMulCpuOnly, Config, "mlir_CPU");
  Config.Flow = "Ns";
  sim::PerfReport Manual = mustRun(runMatMulManual, Config, "manual Ns");

  for (bool Specialize : {false, true}) {
    printHeader(std::string("Fig. 12") + (Specialize ? "b" : "a") +
                ": v3_16, dims==128, normalized to mlir_CPU (copy "
                "specialization " +
                (Specialize ? "ON" : "OFF") + ")");
    printNormalized("cpp_MANUAL, Ns", Manual, Cpu);
    for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
      Config.Flow = Flow;
      Config.SpecializeCopies = Specialize;
      sim::PerfReport R = mustRun(runMatMulAxi4mlir, Config, Flow);
      printNormalized(("mlir_AXI4MLIR, " + std::string(Flow)).c_str(), R,
                      Cpu);
    }
  }
  std::printf("\nExpected (paper): without specialization the generated "
              "code has more branches than manual; with it, AXI4MLIR "
              "beats manual on all three metrics.\n");
  return 0;
}
