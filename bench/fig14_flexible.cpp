//===- fig14_flexible.cpp - Paper Fig. 14: flexible tiling on v4 ----------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 14: all permutations of a MatMul problem with
/// dims drawn from {32, 256, 512} on the v4 accelerator, comparing the
/// As/Bs/Cs-squareTile heuristics against the "Best" heuristic that
/// exploits v4's rectangular tiles. The chosen flow/tiles of "Best" are
/// annotated like the paper does.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "exec/Heuristics.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

namespace {

double runChoice(int64_t M, int64_t N, int64_t K,
                 const FlowTilingChoice &Choice) {
  MatMulRunConfig Config;
  Config.M = M;
  Config.N = N;
  Config.K = K;
  Config.Version = V::V4;
  Config.AccelSize = 16;
  Config.Flow = Choice.Flow;
  Config.TileM = Choice.TileM;
  Config.TileN = Choice.TileN;
  Config.TileK = Choice.TileK;
  Config.Validate = false;
  return mustRun(runMatMulAxi4mlir, Config, "fig14").TaskClockMs;
}

} // namespace

int main() {
  // v4_16 internal buffer capacity per operand (see MatMulAccelerator).
  const int64_t CapacityWords = 16 * 16 * 16;
  const int64_t Sizes[3] = {32, 256, 512};
  const int Permutations[6][3] = {{1, 0, 2}, {1, 2, 0}, {0, 1, 2},
                                  {0, 2, 1}, {2, 1, 0}, {2, 0, 1}};

  printHeader("Fig. 14: MatMul problem permutations on v4_16 "
              "(task-clock in ms)");
  std::printf("%-14s %12s %12s %12s %12s   %s\n", "dims [M_N_K]",
              "As-square", "Bs-square", "Cs-square", "Best",
              "Best choice");
  for (const auto &Perm : Permutations) {
    int64_t M = Sizes[Perm[0]], N = Sizes[Perm[1]], K = Sizes[Perm[2]];
    FlowTilingChoice AsChoice = chooseSquareTile(M, N, K, "As",
                                                 CapacityWords);
    FlowTilingChoice BsChoice = chooseSquareTile(M, N, K, "Bs",
                                                 CapacityWords);
    FlowTilingChoice CsChoice = chooseSquareTile(M, N, K, "Cs",
                                                 CapacityWords);
    FlowTilingChoice Best = chooseBestFlexible(M, N, K, CapacityWords);

    std::printf("%4lld_%3lld_%3lld %12.3f %12.3f %12.3f %12.3f   "
                "%s %lld %lld %lld\n",
                static_cast<long long>(M), static_cast<long long>(N),
                static_cast<long long>(K), runChoice(M, N, K, AsChoice),
                runChoice(M, N, K, BsChoice), runChoice(M, N, K, CsChoice),
                runChoice(M, N, K, Best), Best.Flow.c_str(),
                static_cast<long long>(Best.TileM),
                static_cast<long long>(Best.TileN),
                static_cast<long long>(Best.TileK));
  }
  std::printf("\nExpected (paper): the best square flow varies with the "
              "problem permutation; Best (flexible tiles) outperforms "
              "square tiling.\n");
  return 0;
}
