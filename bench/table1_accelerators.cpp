//===- table1_accelerators.cpp - Paper Table I: accelerator catalog -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Table I: the accelerators used in the experiments,
/// their reuse capabilities, opcodes and throughput (OPs/cycle), measured
/// by driving each simulated engine with a calibration tile.
///
//===----------------------------------------------------------------------===//

#include "sim/SoC.h"

#include <cstdio>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using namespace axi4mlir::sim::opcodes;

namespace {

/// Streams one full v-appropriate tile computation and reports measured
/// OPs/cycle from the model's charged compute cycles.
double measureOpsPerCycle(MatMulAccelerator::Version Ver, int64_t Size) {
  SoCParams Params;
  MatMulAccelerator Accel(Ver, Size, ElemKind::I32, Params);
  auto feedTile = [&](uint32_t Opcode, int64_t Words) {
    Accel.consumeWord(Opcode);
    for (int64_t I = 0; I < Words; ++I)
      Accel.consumeWord(1);
  };
  if (Ver == MatMulAccelerator::Version::V1) {
    feedTile(MM_SASBCCRC, 2 * Size * Size);
  } else {
    feedTile(MM_SA, Size * Size);
    feedTile(MM_SB, Size * Size);
    if (Ver == MatMulAccelerator::Version::V2) {
      Accel.consumeWord(MM_CC_RC);
    } else {
      Accel.consumeWord(MM_CC);
      Accel.consumeWord(MM_RC);
    }
  }
  double Cycles = Accel.takeComputeCycles();
  double Ops = 2.0 * static_cast<double>(Size) * Size * Size;
  return Cycles > 0 ? Ops / Cycles : 0;
}

const char *reuseOf(MatMulAccelerator::Version Ver) {
  switch (Ver) {
  case MatMulAccelerator::Version::V1:
    return "Nothing";
  case MatMulAccelerator::Version::V2:
    return "Inputs";
  case MatMulAccelerator::Version::V3:
    return "Ins/Out";
  case MatMulAccelerator::Version::V4:
    return "Ins/Out (flex size)";
  }
  return "?";
}

const char *opcodesOf(MatMulAccelerator::Version Ver) {
  switch (Ver) {
  case MatMulAccelerator::Version::V1:
    return "sAsBcCrC";
  case MatMulAccelerator::Version::V2:
    return "sA, sB, cCrC";
  case MatMulAccelerator::Version::V3:
    return "sA, sB, cC, rC";
  case MatMulAccelerator::Version::V4:
    return "cfg, sA, sB, cC, rC";
  }
  return "?";
}

} // namespace

int main() {
  std::printf("=== Table I: Accelerators used in the experiments "
              "(simulated; fabric @200MHz) ===\n");
  std::printf("%-6s %-20s %-20s %s\n", "Type", "Possible Reuse",
              "Opcode(s)", "(Size, OPs/Cycle)");
  using V = MatMulAccelerator::Version;
  for (V Ver : {V::V1, V::V2, V::V3, V::V4}) {
    std::printf("v%-5d %-20s %-20s ",
                Ver == V::V1   ? 1
                : Ver == V::V2 ? 2
                : Ver == V::V3 ? 3
                               : 4,
                reuseOf(Ver), opcodesOf(Ver));
    for (int64_t Size : {4, 8, 16})
      std::printf("(%lld, %.0f) ", static_cast<long long>(Size),
                  measureOpsPerCycle(Ver, Size));
    std::printf("\n");
  }
  std::printf("\nConv2D engine: filter+output stationary, runtime iC/fHW, "
              "%.0f OPs/cycle\n", convOpsPerCycle());
  return 0;
}
