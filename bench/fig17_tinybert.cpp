//===- fig17_tinybert.cpp - Paper Fig. 17: TinyBERT end-to-end ------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 17: end-to-end TinyBERT (batch == 2) inference
/// under three compilation strategies: CPU-only, Ns-SquareTile offload,
/// and the "Best" heuristic (Sec. IV-C). The model's matmul layers (the
/// paper measures them at ~75% of CPU runtime) are executed through the
/// real pipeline per unique shape; the CPU matmul cost is calibrated from
/// an interpreted 128^3 run and extrapolated by MAC count (interpreting
/// 10^9 MACs per point would dominate the bench for no accuracy gain).
/// Hidden sizes are rounded to tile-friendly values (312 -> 320,
/// 1200 -> 1280); see EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "exec/Heuristics.h"

#include <map>

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

namespace {

struct MatMulLayer {
  const char *Name;
  int64_t M, N, K;
  int Count; // occurrences across the whole model
};

double runLayer(const MatMulLayer &L, const FlowTilingChoice &Choice) {
  MatMulRunConfig Config;
  Config.M = L.M;
  Config.N = L.N;
  Config.K = L.K;
  Config.Version = V::V4;
  Config.AccelSize = 16;
  Config.Flow = Choice.Flow;
  Config.TileM = Choice.TileM;
  Config.TileN = Choice.TileN;
  Config.TileK = Choice.TileK;
  Config.Validate = false;
  return mustRun(runMatMulAxi4mlir, Config, L.Name).TaskClockMs;
}

} // namespace

int main() {
  // TinyBERT-4 (batch 2, seq 128 -> 256 token rows, hidden 320, FFN 1280):
  // per encoder layer: Q/K/V/out projections, attention score & context
  // matmuls, two FFN matmuls; 4 layers plus the pooler.
  const MatMulLayer Layers[] = {
      {"qkv_out_proj", 256, 320, 320, 4 * 4},
      {"attn_scores", 256, 256, 320, 4},
      {"attn_context", 256, 320, 256, 4},
      {"ffn_up", 256, 1280, 320, 4},
      {"ffn_down", 256, 320, 1280, 4},
      {"pooler", 256, 320, 320, 1},
  };

  printHeader("Fig. 17: TinyBERT (batch == 2) end-to-end execution");

  // Calibrate the CPU cost per MAC from an interpreted 128^3 matmul.
  double CpuMsPerMac;
  {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = 128;
    Config.Validate = false;
    sim::PerfReport R = mustRun(runMatMulCpuOnly, Config, "cpu-calib");
    CpuMsPerMac = R.TaskClockMs / (128.0 * 128.0 * 128.0);
  }

  double CpuMatMulMs = 0;
  for (const MatMulLayer &L : Layers)
    CpuMatMulMs += CpuMsPerMac * static_cast<double>(L.M) * L.N * L.K *
                   L.Count;
  // Paper: matmul layers are 75% of the CPU-only runtime.
  double OtherLayersMs = CpuMatMulMs / 3.0;
  double CpuTotalMs = CpuMatMulMs + OtherLayersMs;

  const int64_t CapacityWords = 16 * 16 * 16;
  std::map<std::string, double> MatMulMs;
  for (const char *Strategy : {"Ns-SquareTile", "Best"}) {
    double Total = 0;
    for (const MatMulLayer &L : Layers) {
      FlowTilingChoice Choice =
          std::string(Strategy) == "Best"
              ? chooseBestFlexible(L.M, L.N, L.K, CapacityWords)
              : chooseSquareTile(L.M, L.N, L.K, "Ns", CapacityWords);
      Total += runLayer(L, Choice) * L.Count;
    }
    MatMulMs[Strategy] = Total;
  }

  std::printf("%-24s %14s %14s %16s %16s\n", "strategy", "matmuls(ms)",
              "other(ms)", "e2e speedup", "matmul speedup");
  std::printf("%-24s %14.1f %14.1f %16s %16s\n", "CPU (MLIR)", CpuMatMulMs,
              OtherLayersMs, "1.00x", "1.00x");
  for (const char *Strategy : {"Ns-SquareTile", "Best"}) {
    double Acc = MatMulMs[Strategy];
    double E2E = CpuTotalMs / (Acc + OtherLayersMs);
    double MM = CpuMatMulMs / Acc;
    std::printf("%-24s %14.1f %14.1f %15.2fx %15.2fx\n", Strategy, Acc,
                OtherLayersMs, E2E, MM);
  }
  std::printf("\nExpected (paper): e2e 3.32x (Ns-SquareTile) and 3.44x "
              "(Best); matmul layers 14.7x / 18.4x.\n");
  return 0;
}
