//===- fig13_manual_vs_axi4mlir.cpp - Paper Fig. 13: overall comparison ---===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 13: manual driver vs AXI4MLIR-generated driver
/// (copy specialization ON) for every (dims, accel size, version, flow)
/// combination, plus the aggregate speedup / cache-reference reduction the
/// paper quotes (1.18x avg, 1.65x max; 10% avg / 56% max fewer refs).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <algorithm>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  printHeader("Fig. 13: manual vs AXI4MLIR, all configurations "
              "(task-clock in ms)");
  std::vector<double> Speedups;
  std::vector<double> RefReductions;

  for (int64_t Dims : {64, 128, 256}) {
    for (int64_t Size : {8, 16}) {
      for (V Version : {V::V2, V::V3}) {
        for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
          if (Version == V::V2 && std::string(Flow) == "Cs")
            continue;
          MatMulRunConfig Config;
          Config.M = Config.N = Config.K = Dims;
          Config.Version = Version;
          Config.AccelSize = Size;
          Config.Flow = Flow;
          Config.Validate = false;

          sim::PerfReport Manual =
              mustRun(runMatMulManual, Config, "manual");
          sim::PerfReport Generated =
              mustRun(runMatMulAxi4mlir, Config, "axi4mlir");
          double Speedup = Manual.TaskClockMs / Generated.TaskClockMs;
          double RefReduction =
              1.0 - static_cast<double>(Generated.CacheReferences) /
                        static_cast<double>(Manual.CacheReferences);
          Speedups.push_back(Speedup);
          RefReductions.push_back(RefReduction);
          std::printf("(%3lld, %2lld, v%d, %-2s)  manual %9.3f | "
                      "axi4mlir %9.3f | speedup %5.2fx | cache-ref "
                      "reduction %6.1f%%\n",
                      static_cast<long long>(Dims),
                      static_cast<long long>(Size),
                      Version == V::V2 ? 2 : 3, Flow, Manual.TaskClockMs,
                      Generated.TaskClockMs, Speedup,
                      100.0 * RefReduction);
        }
      }
    }
  }

  double AvgSpeedup = 0, MaxSpeedup = 0, AvgRef = 0, MaxRef = 0;
  for (double S : Speedups) {
    AvgSpeedup += S;
    MaxSpeedup = std::max(MaxSpeedup, S);
  }
  for (double R : RefReductions) {
    AvgRef += R;
    MaxRef = std::max(MaxRef, R);
  }
  AvgSpeedup /= static_cast<double>(Speedups.size());
  AvgRef /= static_cast<double>(RefReductions.size());
  std::printf("\nSummary: speedup avg %.2fx max %.2fx | cache-reference "
              "reduction avg %.1f%% max %.1f%%\n",
              AvgSpeedup, MaxSpeedup, 100.0 * AvgRef, 100.0 * MaxRef);
  std::printf("Paper:   speedup avg 1.18x max 1.65x | cache-reference "
              "reduction avg ~10%% max ~56%%\n");
  return 0;
}
