//===- BenchUtil.h - Shared helpers for the figure benches ------*- C++ -*-===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table printing and run helpers shared by the per-figure benchmark
/// binaries. Each binary regenerates the rows/series of one paper table or
/// figure (see DESIGN.md Sec. 4 and EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#ifndef AXI4MLIR_BENCH_BENCHUTIL_H
#define AXI4MLIR_BENCH_BENCHUTIL_H

#include "exec/Pipeline.h"

#include <cstdio>
#include <string>

namespace axi4mlir {
namespace bench {

inline void printHeader(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

inline void printRow(const std::string &Label, const sim::PerfReport &R) {
  std::printf("%-42s task-clock %10.3f ms | cache-refs %10llu | "
              "branches %12llu | dma %8llu xfers %12llu B\n",
              Label.c_str(), R.TaskClockMs,
              static_cast<unsigned long long>(R.CacheReferences),
              static_cast<unsigned long long>(R.BranchInstructions),
              static_cast<unsigned long long>(R.DmaTransfers),
              static_cast<unsigned long long>(R.DmaBytesMoved));
}

/// Runs and aborts loudly on pipeline/protocol errors so CI catches them.
inline sim::PerfReport mustRun(exec::RunResult (*Fn)(
                                   const exec::MatMulRunConfig &),
                               const exec::MatMulRunConfig &Config,
                               const char *What) {
  exec::RunResult Result = Fn(Config);
  if (!Result.Ok || (Config.Validate && !Result.NumericsMatch)) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", What,
                 Result.Error.c_str());
    std::abort();
  }
  return Result.Report;
}

} // namespace bench
} // namespace axi4mlir

#endif // AXI4MLIR_BENCH_BENCHUTIL_H
