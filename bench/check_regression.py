#!/usr/bin/env python3
"""Compare a runtime_micro run against the committed baseline trajectory.

Fails (exit 1) when any BM_* benchmark's median real_time regressed by more
than the threshold versus the baseline entry. Used by the CI bench job:

  python3 bench/check_regression.py \
      --baseline BENCH_runtime_micro.json --baseline-label optimized \
      --current runtime_micro_ci.json [--threshold 25]

Input formats: --baseline accepts either a raw google-benchmark JSON dump
or the trajectory file record_bench.sh maintains ({label: run, ...});
--current is a raw dump. When a run contains repetitions, the median
aggregate ("_median" entries google-benchmark emits) is used; otherwise
the per-benchmark real_time is the (trivial) median.

CI machines differ from the machine the baseline was recorded on, so this
gate is deliberately coarse (default 25%): it catches the "accidentally
made a hot primitive 2x slower" class of regression, not single-digit
drift. Tighten the threshold only for same-machine comparisons.
"""

import argparse
import json
import sys


def load_run(path, label=None):
    """Returns the google-benchmark run dict from \p path."""
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" in data:
        return data
    # Trajectory file: {label: run, ...}.
    if label is None:
        raise SystemExit(f"error: {path} is a trajectory file; pass --baseline-label")
    if label not in data:
        raise SystemExit(
            f"error: label '{label}' not in {path} (has: {', '.join(sorted(data))})"
        )
    return data[label]


def median_times(run):
    """Maps benchmark name -> median real_time (ns) for BM_* entries."""
    raw = {}
    medians = {}
    for bench in run.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith("BM_"):
            continue
        # Aggregated runs: prefer the explicit median aggregate.
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[name.rsplit("_median", 1)[0]] = float(bench["real_time"])
            continue
        raw.setdefault(name, []).append(float(bench["real_time"]))
    for name, times in raw.items():
        if name not in medians:
            times.sort()
            mid = len(times) // 2
            medians[name] = (
                times[mid]
                if len(times) % 2
                else (times[mid - 1] + times[mid]) / 2.0
            )
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--baseline-label", default=None)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="max tolerated median real_time regression, percent (default 25)",
    )
    args = parser.parse_args()

    baseline = median_times(load_run(args.baseline, args.baseline_label))
    current = median_times(load_run(args.current))

    regressions = []
    improvements = []
    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(current):
        if name not in baseline:
            print(f"{name:<44} {'(new)':>12} {current[name]:>12.1f} {'':>8}")
            continue
        delta_pct = (current[name] / baseline[name] - 1.0) * 100.0
        flag = " <-- REGRESSION" if delta_pct > args.threshold else ""
        print(
            f"{name:<44} {baseline[name]:>12.1f} {current[name]:>12.1f} "
            f"{delta_pct:>+7.1f}%{flag}"
        )
        if delta_pct > args.threshold:
            regressions.append((name, delta_pct))
        elif delta_pct < 0:
            improvements.append((name, baseline[name] / current[name]))

    # Improvements are reported (never gated): a speedup PR's CI log is
    # its own before/after record.
    if improvements:
        improvements.sort(key=lambda entry: -entry[1])
        print(f"\nmedian improvements ({len(improvements)} benchmark(s)):")
        for name, speedup in improvements:
            print(f"  {name}: {speedup:.2f}x faster")

    if regressions:
        print(
            f"\nerror: {len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:.0f}%:",
            file=sys.stderr,
        )
        for name, delta_pct in regressions:
            print(f"  {name}: +{delta_pct:.1f}%", file=sys.stderr)
        return 1
    print(f"\nok: no benchmark regressed more than {args.threshold:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
