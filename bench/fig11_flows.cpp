//===- fig11_flows.cpp - Paper Fig. 11: flows before the copy opt ---------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 11: manual Ns driver vs AXI4MLIR-generated
/// Ns/As/Bs/Cs flows on v2/v3 accelerators, *before* the MemRef-DMA copy
/// specialization (the experiment that exposed the staging-copy
/// bottleneck). Expected shape: generated Ns slower than manual Ns; Cs the
/// most promising generated flow.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  printHeader("Fig. 11: manual Ns vs AXI4MLIR flows, copy specialization "
              "OFF (task-clock in ms)");
  for (int64_t Dims : {64, 128, 256}) {
    for (int64_t Size : {8, 16}) {
      for (V Version : {V::V2, V::V3}) {
        MatMulRunConfig Config;
        Config.M = Config.N = Config.K = Dims;
        Config.Version = Version;
        Config.AccelSize = Size;
        Config.Validate = false;
        Config.SpecializeCopies = false;

        std::printf("(%3lld, %2lld, v%d): ",
                    static_cast<long long>(Dims),
                    static_cast<long long>(Size),
                    Version == V::V2 ? 2 : 3);
        Config.Flow = "Ns";
        std::printf("manual_Ns %9.3f | ",
                    mustRun(runMatMulManual, Config, "manual").TaskClockMs);
        for (const char *Flow : {"Ns", "As", "Bs", "Cs"}) {
          if (Version == V::V2 && std::string(Flow) == "Cs")
            continue;
          Config.Flow = Flow;
          std::printf("%s %9.3f | ", Flow,
                      mustRun(runMatMulAxi4mlir, Config, Flow).TaskClockMs);
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\nExpected (paper): generated Ns slower than manual Ns "
              "before the copy optimization; Cs the best generated flow "
              "on v3.\n");
  return 0;
}
