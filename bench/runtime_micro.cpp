//===- runtime_micro.cpp - google-benchmark runtime microbenchmarks -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock microbenchmarks (google-benchmark) of the simulator-side
/// primitives: staging copies (generic vs specialized), the cache
/// simulator, and the accelerator state machines. These measure the
/// reproduction's own performance, complementing the modeled task-clock
/// numbers of the figure benches.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/ExecPlanRun.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "exec/opt/PlanOpt.h"
#include "runtime/DmaRuntime.h"
#include "sim/SoC.h"
#include "transforms/Passes.h"

#include <benchmark/benchmark.h>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using runtime::MemRefDesc;

namespace {

void BM_CopyToDmaGeneric(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/false);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CopyToDmaSpecialized(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CacheSimAccess(benchmark::State &State) {
  SoCParams Params;
  CacheSim Cache(Params);
  uint64_t Address = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Address, 4));
    Address += 64;
  }
}

/// One full v1 tile through the production burst datapath (what the DMA
/// engine drives): opcode + A|B burst in, C tile drained out.
void BM_MatMulAcceleratorTile(benchmark::State &State) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, State.range(0),
                          ElemKind::I32, Params);
  int64_t Words = 2 * State.range(0) * State.range(0);
  std::vector<uint32_t> Stream(static_cast<size_t>(Words) + 1, 1);
  Stream[0] = opcodes::MM_SASBCCRC;
  std::vector<uint32_t> Out(
      static_cast<size_t>(State.range(0) * State.range(0)));
  for (auto _ : State) {
    Accel.consumeBurst(Stream.data(), Stream.size());
    benchmark::DoNotOptimize(Accel.drainOutputInto(Out.data(), Out.size()));
    Accel.takeComputeCycles();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

/// Word-at-a-time reference path of the same tile, kept measurable so the
/// burst fast path's advantage stays visible.
void BM_MatMulAcceleratorTileWordwise(benchmark::State &State) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, State.range(0),
                          ElemKind::I32, Params);
  int64_t Words = 2 * State.range(0) * State.range(0);
  std::vector<uint32_t> Out(
      static_cast<size_t>(State.range(0) * State.range(0)));
  for (auto _ : State) {
    Accel.consumeWord(opcodes::MM_SASBCCRC);
    for (int64_t I = 0; I < Words; ++I)
      Accel.consumeWord(1);
    benchmark::DoNotOptimize(Accel.drainOutputInto(Out.data(), Out.size()));
    Accel.takeComputeCycles();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

/// One conv output slice through the burst datapath: configure, load a
/// filter, stream State.range(0) windows, drain the slice.
void BM_ConvAcceleratorTile(benchmark::State &State) {
  SoCParams Params;
  ConvAccelerator Accel(ElemKind::I32, Params);
  constexpr int64_t InChannels = 8, FilterSize = 3;
  const size_t WindowWords = InChannels * FilterSize * FilterSize;
  int64_t Windows = State.range(0);

  std::vector<uint32_t> Cfg = {opcodes::CONV_SET_FS,
                               static_cast<uint32_t>(FilterSize),
                               opcodes::CONV_SET_IC,
                               static_cast<uint32_t>(InChannels)};
  Accel.consumeBurst(Cfg.data(), Cfg.size());

  // Filter burst + all window bursts + the emit opcode as one stream.
  std::vector<uint32_t> Stream;
  Stream.push_back(opcodes::CONV_SF);
  Stream.insert(Stream.end(), WindowWords, 2);
  for (int64_t W = 0; W < Windows; ++W) {
    Stream.push_back(opcodes::CONV_SICO);
    Stream.insert(Stream.end(), WindowWords, 3);
  }
  Stream.push_back(opcodes::CONV_RO);
  std::vector<uint32_t> Out(static_cast<size_t>(Windows));
  for (auto _ : State) {
    Accel.consumeBurst(Stream.data(), Stream.size());
    benchmark::DoNotOptimize(Accel.drainOutputInto(Out.data(), Out.size()));
    Accel.takeComputeCycles();
  }
  State.SetItemsProcessed(State.iterations() * Windows * WindowWords);
}

//===----------------------------------------------------------------------===//
// Host interpreter: legacy tree walker vs. compiled ExecPlan
//===----------------------------------------------------------------------===//

/// CPU-level linalg.generic matmul (the mlir_CPU baseline): every point of
/// the M*N*K space runs through the executor, so executor overhead
/// dominates. The IR is built and lowered once; the compiled variants also
/// build their plan once (cached inside the Interpreter).
void interpretMatMulCpu(benchmark::State &State, exec::ExecMode Mode) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }

  auto Soc = makeCpuOnlySoC();
  MemRefDesc A = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc B = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc C = MemRefDesc::alloc({Dims, Dims});
  exec::fillRandom(A, 1);
  exec::fillRandom(B, 2);
  exec::fillRandom(C, 3);

  exec::Interpreter Interp(*Soc, nullptr, Mode);
  for (auto _ : State) {
    Soc->resetCounters();
    if (failed(Interp.run(Func, {A, B, C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * Dims * Dims * Dims);
}

void BM_InterpretMatMulCpuWalker(benchmark::State &State) {
  interpretMatMulCpu(State, exec::ExecMode::Walker);
}
void BM_InterpretMatMulCpuCompiled(benchmark::State &State) {
  interpretMatMulCpu(State, exec::ExecMode::Plan);
}
void BM_InterpretMatMulCpuThreaded(benchmark::State &State) {
  interpretMatMulCpu(State, exec::ExecMode::Threaded);
}

/// Shared fixture for the axirt-level benches: one matmul func lowered
/// through the full pipeline to axirt.* calls, plus the simulated board
/// and filled argument buffers. Keeping this in one place guarantees the
/// walker/compiled/fused/unfused variants all measure the same pipeline.
struct AxirtMatMulFixture {
  MLIRContext Context;
  OwningOpRef Owner;
  func::FuncOp Func;
  std::unique_ptr<SoC> Soc;
  std::unique_ptr<runtime::DmaRuntime> Runtime;
  MemRefDesc A, B, C;

  /// Returns false (after SkipWithError) on a pipeline failure.
  bool init(benchmark::State &State, const char *Flow = "Ns",
            MatMulAccelerator::Version Version =
                MatMulAccelerator::Version::V3) {
    int64_t Dims = State.range(0);
    registerAllDialects(Context);
    OpBuilder Builder(&Context);
    Func = exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
    Owner = OwningOpRef(Func.getOperation());
    parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
        exec::makeMatMulConfigJson(Version, 16, Flow));
    std::string Error;
    transforms::LoweringOptions Options;
    Options.EnableCpuTiling = false;
    if (failed(transforms::convertNamedToGeneric(Func, Error)) ||
        failed(transforms::matchAndAnnotate(Func, Accel, Error)) ||
        failed(transforms::lowerToAccel(Func, Options, Error)) ||
        failed(transforms::convertAccelToRuntime(Func, Error))) {
      State.SkipWithError(Error.c_str());
      return false;
    }
    Soc = makeMatMulSoC(Version, 16);
    Runtime =
        std::make_unique<runtime::DmaRuntime>(*Soc, /*SpecializeCopies=*/true);
    A = MemRefDesc::alloc({Dims, Dims});
    B = MemRefDesc::alloc({Dims, Dims});
    C = MemRefDesc::alloc({Dims, Dims});
    exec::fillRandom(A, 1);
    exec::fillRandom(B, 2);
    exec::fillRandom(C, 3);
    return true;
  }
};

/// Fully lowered axirt form: scf loop nests driving batched DMA staging
/// copies — the host-driver hot path the paper measures (Sec. IV-B).
void interpretMatMulAxirt(benchmark::State &State, exec::ExecMode Mode) {
  AxirtMatMulFixture F;
  if (!F.init(State))
    return;
  std::string Error;
  exec::Interpreter Interp(*F.Soc, F.Runtime.get(), Mode);
  for (auto _ : State) {
    F.Soc->resetCounters();
    if (failed(Interp.run(F.Func, {F.A, F.B, F.C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

void BM_InterpretMatMulAxirtWalker(benchmark::State &State) {
  interpretMatMulAxirt(State, exec::ExecMode::Walker);
}
void BM_InterpretMatMulAxirtCompiled(benchmark::State &State) {
  interpretMatMulAxirt(State, exec::ExecMode::Plan);
}
void BM_InterpretMatMulAxirtThreaded(benchmark::State &State) {
  interpretMatMulAxirt(State, exec::ExecMode::Threaded);
}

/// Send/wait fusion ablation: the same axirt-lowered matmul executed from
/// a plan with and without the compile-time fusion of adjacent
/// start_send+wait_send / start_recv+wait_recv pairs. Modeled counters
/// are identical (ExecPlanTest proves it); the delta is pure host-side
/// dispatch on the DMA-heavy sequence.
void interpretMatMulAxirtPlan(benchmark::State &State, bool FusePairs) {
  AxirtMatMulFixture F;
  if (!F.init(State))
    return;
  std::string Error;
  auto Plan = exec::ExecPlan::compile(F.Func, Error, FusePairs);
  if (!Plan) {
    State.SkipWithError(Error.c_str());
    return;
  }
  for (auto _ : State) {
    F.Soc->resetCounters();
    if (failed(Plan->run(*F.Soc, F.Runtime.get(), {F.A, F.B, F.C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

void BM_ExecPlanAxirtUnfused(benchmark::State &State) {
  interpretMatMulAxirtPlan(State, /*FusePairs=*/false);
}
void BM_ExecPlanAxirtFused(benchmark::State &State) {
  interpretMatMulAxirtPlan(State, /*FusePairs=*/true);
}

/// Plan-optimizer ablation (src/exec/opt): the A-stationary driver — the
/// data-stationary Fig. 11/12 flow with the most hoistable staging — run
/// from the unoptimized plan vs. the full fold+licm+coalesce+dce
/// pipeline. Wall-clock measures the host-dispatch saving; the modeled
/// counters are exported alongside so record_bench.sh captures the
/// ablation (instruction and DMA-transfer reduction) in
/// BENCH_runtime_micro.json.
void interpretMatMulAxirtPlanOpt(benchmark::State &State,
                                 const char *Spec) {
  AxirtMatMulFixture F;
  if (!F.init(State, /*Flow=*/"As", MatMulAccelerator::Version::V4))
    return;
  std::string Error;
  auto Plan = exec::ExecPlan::compile(F.Func, Error);
  if (!Plan) {
    State.SkipWithError(Error.c_str());
    return;
  }
  exec::opt::PlanOptOptions Options;
  if (failed(exec::opt::parsePlanOptSpec(Spec, Options, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }
  exec::opt::PlanOptStats Stats = exec::opt::optimizePlan(*Plan, Options);
  for (auto _ : State) {
    F.Soc->resetCounters();
    if (failed(Plan->run(*F.Soc, F.Runtime.get(), {F.A, F.B, F.C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  PerfReport Report = F.Soc->report();
  State.counters["modeled_insts"] =
      static_cast<double>(Report.Instructions);
  State.counters["modeled_dma_transfers"] =
      static_cast<double>(Report.DmaTransfers);
  State.counters["opt_rewrites"] = static_cast<double>(Stats.total());
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

void BM_ExecPlanAxirtPlanOptNone(benchmark::State &State) {
  interpretMatMulAxirtPlanOpt(State, "none");
}
void BM_ExecPlanAxirtOptimized(benchmark::State &State) {
  interpretMatMulAxirtPlanOpt(State, "fold,dce,licm,coalesce");
}

//===----------------------------------------------------------------------===//
// Threaded-dispatch executor ablation: the same compiled plan run through
// the PR-3 plan interpreter (one switch per instruction, generic odometer)
// vs. the pre-decoded threaded engine (computed-goto dispatch, specialized
// micro-kernels). Modeled counters are bit-identical by contract
// (PlanEquivalenceFuzzTest); the delta is pure host wall-clock.
//===----------------------------------------------------------------------===//

/// CPU-path matmul: one linalg.generic, M*N*K points through the
/// executor — the odometer-vs-specialized-kernel comparison.
void execPlanCpuMatMul(benchmark::State &State, bool Threaded) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }
  auto Plan = exec::ExecPlan::compile(Func, Error);
  if (!Plan) {
    State.SkipWithError(Error.c_str());
    return;
  }
  auto Decoded = exec::DecodedPlan::decode(*Plan);

  auto Soc = makeCpuOnlySoC();
  MemRefDesc A = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc B = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc C = MemRefDesc::alloc({Dims, Dims});
  exec::fillRandom(A, 1);
  exec::fillRandom(B, 2);
  exec::fillRandom(C, 3);

  for (auto _ : State) {
    Soc->resetCounters();
    LogicalResult Result =
        Threaded ? Decoded->run(*Soc, nullptr, {A, B, C}, Error)
                 : Plan->run(*Soc, nullptr, {A, B, C}, Error);
    if (failed(Result)) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.counters["specialized_kernels"] =
      static_cast<double>(Decoded->numSpecializedKernels());
  State.SetItemsProcessed(State.iterations() * Dims * Dims * Dims);
}

void BM_ExecPlanCpuMatMul(benchmark::State &State) {
  execPlanCpuMatMul(State, /*Threaded=*/false);
}
void BM_ExecPlanCpuMatMulThreaded(benchmark::State &State) {
  execPlanCpuMatMul(State, /*Threaded=*/true);
}

/// CPU-path conv2d: the strided input map exercises the linear-fold
/// indexing (d2*s + d5) in the specialized kernel.
void execPlanCpuConv(benchmark::State &State, bool Threaded) {
  int64_t HW = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildConvFunc(Builder, 1, 4, HW, 4, 3, 1, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }
  auto Plan = exec::ExecPlan::compile(Func, Error);
  if (!Plan) {
    State.SkipWithError(Error.c_str());
    return;
  }
  auto Decoded = exec::DecodedPlan::decode(*Plan);

  auto Soc = makeCpuOnlySoC();
  int64_t OutHW = HW - 3 + 1;
  MemRefDesc In = MemRefDesc::alloc({1, 4, HW, HW});
  MemRefDesc Filter = MemRefDesc::alloc({4, 4, 3, 3});
  MemRefDesc Out = MemRefDesc::alloc({1, 4, OutHW, OutHW});
  exec::fillRandom(In, 1);
  exec::fillRandom(Filter, 2);
  exec::fillRandom(Out, 3);

  for (auto _ : State) {
    Soc->resetCounters();
    LogicalResult Result =
        Threaded ? Decoded->run(*Soc, nullptr, {In, Filter, Out}, Error)
                 : Plan->run(*Soc, nullptr, {In, Filter, Out}, Error);
    if (failed(Result)) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * 4 * OutHW * OutHW * 4 * 3 *
                          3);
}

void BM_ExecPlanCpuConv(benchmark::State &State) {
  execPlanCpuConv(State, /*Threaded=*/false);
}
void BM_ExecPlanCpuConvThreaded(benchmark::State &State) {
  execPlanCpuConv(State, /*Threaded=*/true);
}

/// Axirt-path threaded run (the DMA-heavy driver): dispatch is a smaller
/// share here, so the gain is bounded by the runtime-call work.
void BM_ExecPlanAxirtThreaded(benchmark::State &State) {
  AxirtMatMulFixture F;
  if (!F.init(State))
    return;
  std::string Error;
  auto Plan = exec::ExecPlan::compile(F.Func, Error);
  if (!Plan) {
    State.SkipWithError(Error.c_str());
    return;
  }
  auto Decoded = exec::DecodedPlan::decode(*Plan);
  for (auto _ : State) {
    F.Soc->resetCounters();
    if (failed(Decoded->run(*F.Soc, F.Runtime.get(), {F.A, F.B, F.C},
                            Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

/// Plan compilation itself (paid once per function, amortized over runs).
void BM_ExecPlanCompile(benchmark::State &State) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(exec::ExecPlan::compile(Func, Error));
}

} // namespace

BENCHMARK(BM_CopyToDmaGeneric)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CopyToDmaSpecialized)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CacheSimAccess);
BENCHMARK(BM_MatMulAcceleratorTile)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_MatMulAcceleratorTileWordwise)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_ConvAcceleratorTile)->Arg(4)->Arg(16);
BENCHMARK(BM_InterpretMatMulCpuWalker)->Arg(16)->Arg(32);
BENCHMARK(BM_InterpretMatMulCpuCompiled)->Arg(16)->Arg(32);
BENCHMARK(BM_InterpretMatMulCpuThreaded)->Arg(16)->Arg(32);
BENCHMARK(BM_InterpretMatMulAxirtWalker)->Arg(32)->Arg(64);
BENCHMARK(BM_InterpretMatMulAxirtCompiled)->Arg(32)->Arg(64);
BENCHMARK(BM_InterpretMatMulAxirtThreaded)->Arg(32)->Arg(64);
BENCHMARK(BM_ExecPlanCpuMatMul)->Arg(16)->Arg(32);
BENCHMARK(BM_ExecPlanCpuMatMulThreaded)->Arg(16)->Arg(32);
BENCHMARK(BM_ExecPlanCpuConv)->Arg(16)->Arg(32);
BENCHMARK(BM_ExecPlanCpuConvThreaded)->Arg(16)->Arg(32);
BENCHMARK(BM_ExecPlanAxirtUnfused)->Arg(64);
BENCHMARK(BM_ExecPlanAxirtFused)->Arg(64);
BENCHMARK(BM_ExecPlanAxirtPlanOptNone)->Arg(64);
BENCHMARK(BM_ExecPlanAxirtOptimized)->Arg(64);
BENCHMARK(BM_ExecPlanAxirtThreaded)->Arg(64);
BENCHMARK(BM_ExecPlanCompile)->Arg(32);

BENCHMARK_MAIN();
