//===- runtime_micro.cpp - google-benchmark runtime microbenchmarks -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock microbenchmarks (google-benchmark) of the simulator-side
/// primitives: staging copies (generic vs specialized), the cache
/// simulator, and the accelerator state machines. These measure the
/// reproduction's own performance, complementing the modeled task-clock
/// numbers of the figure benches.
///
//===----------------------------------------------------------------------===//

#include "dialects/InitAllDialects.h"
#include "exec/AccelConfigs.h"
#include "exec/ExecPlan.h"
#include "exec/Interpreter.h"
#include "exec/Pipeline.h"
#include "exec/Reference.h"
#include "runtime/DmaRuntime.h"
#include "sim/SoC.h"
#include "transforms/Passes.h"

#include <benchmark/benchmark.h>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using runtime::MemRefDesc;

namespace {

void BM_CopyToDmaGeneric(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/false);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CopyToDmaSpecialized(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CacheSimAccess(benchmark::State &State) {
  SoCParams Params;
  CacheSim Cache(Params);
  uint64_t Address = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Address, 4));
    Address += 64;
  }
}

void BM_MatMulAcceleratorTile(benchmark::State &State) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, State.range(0),
                          ElemKind::I32, Params);
  int64_t Words = 2 * State.range(0) * State.range(0);
  for (auto _ : State) {
    Accel.consumeWord(opcodes::MM_SASBCCRC);
    for (int64_t I = 0; I < Words; ++I)
      Accel.consumeWord(1);
    benchmark::DoNotOptimize(
        Accel.drainOutput(State.range(0) * State.range(0)));
    Accel.takeComputeCycles();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

//===----------------------------------------------------------------------===//
// Host interpreter: legacy tree walker vs. compiled ExecPlan
//===----------------------------------------------------------------------===//

/// CPU-level linalg.generic matmul (the mlir_CPU baseline): every point of
/// the M*N*K space runs through the executor, so executor overhead
/// dominates. The IR is built and lowered once; the compiled variant also
/// builds its plan once (cached inside the Interpreter).
void interpretMatMulCpu(benchmark::State &State, bool UseCompiledPlan) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }

  auto Soc = makeCpuOnlySoC();
  MemRefDesc A = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc B = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc C = MemRefDesc::alloc({Dims, Dims});
  exec::fillRandom(A, 1);
  exec::fillRandom(B, 2);
  exec::fillRandom(C, 3);

  exec::Interpreter Interp(*Soc, nullptr, UseCompiledPlan);
  for (auto _ : State) {
    Soc->resetCounters();
    if (failed(Interp.run(Func, {A, B, C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * Dims * Dims * Dims);
}

void BM_InterpretMatMulCpuWalker(benchmark::State &State) {
  interpretMatMulCpu(State, /*UseCompiledPlan=*/false);
}
void BM_InterpretMatMulCpuCompiled(benchmark::State &State) {
  interpretMatMulCpu(State, /*UseCompiledPlan=*/true);
}

/// Fully lowered axirt form: scf loop nests driving batched DMA staging
/// copies — the host-driver hot path the paper measures (Sec. IV-B).
void interpretMatMulAxirt(benchmark::State &State, bool UseCompiledPlan) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  parser::AcceleratorDesc Accel = exec::parseSingleAccelerator(
      exec::makeMatMulConfigJson(MatMulAccelerator::Version::V3, 16, "Ns"));
  std::string Error;
  transforms::LoweringOptions Options;
  Options.EnableCpuTiling = false;
  if (failed(transforms::convertNamedToGeneric(Func, Error)) ||
      failed(transforms::matchAndAnnotate(Func, Accel, Error)) ||
      failed(transforms::lowerToAccel(Func, Options, Error)) ||
      failed(transforms::convertAccelToRuntime(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }

  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  MemRefDesc A = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc B = MemRefDesc::alloc({Dims, Dims});
  MemRefDesc C = MemRefDesc::alloc({Dims, Dims});
  exec::fillRandom(A, 1);
  exec::fillRandom(B, 2);
  exec::fillRandom(C, 3);

  exec::Interpreter Interp(*Soc, &Runtime, UseCompiledPlan);
  for (auto _ : State) {
    Soc->resetCounters();
    if (failed(Interp.run(Func, {A, B, C}, Error))) {
      State.SkipWithError(Error.c_str());
      break;
    }
  }
  State.SetItemsProcessed(State.iterations() * Dims * Dims * Dims);
}

void BM_InterpretMatMulAxirtWalker(benchmark::State &State) {
  interpretMatMulAxirt(State, /*UseCompiledPlan=*/false);
}
void BM_InterpretMatMulAxirtCompiled(benchmark::State &State) {
  interpretMatMulAxirt(State, /*UseCompiledPlan=*/true);
}

/// Plan compilation itself (paid once per function, amortized over runs).
void BM_ExecPlanCompile(benchmark::State &State) {
  int64_t Dims = State.range(0);
  MLIRContext Context;
  registerAllDialects(Context);
  OpBuilder Builder(&Context);
  func::FuncOp Func =
      exec::buildMatMulFunc(Builder, Dims, Dims, Dims, ElemKind::I32);
  OwningOpRef Owner(Func.getOperation());
  std::string Error;
  if (failed(transforms::convertNamedToGeneric(Func, Error))) {
    State.SkipWithError(Error.c_str());
    return;
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(exec::ExecPlan::compile(Func, Error));
}

} // namespace

BENCHMARK(BM_CopyToDmaGeneric)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CopyToDmaSpecialized)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CacheSimAccess);
BENCHMARK(BM_MatMulAcceleratorTile)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_InterpretMatMulCpuWalker)->Arg(16)->Arg(32);
BENCHMARK(BM_InterpretMatMulCpuCompiled)->Arg(16)->Arg(32);
BENCHMARK(BM_InterpretMatMulAxirtWalker)->Arg(32)->Arg(64);
BENCHMARK(BM_InterpretMatMulAxirtCompiled)->Arg(32)->Arg(64);
BENCHMARK(BM_ExecPlanCompile)->Arg(32);

BENCHMARK_MAIN();
