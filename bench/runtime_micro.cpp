//===- runtime_micro.cpp - google-benchmark runtime microbenchmarks -------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock microbenchmarks (google-benchmark) of the simulator-side
/// primitives: staging copies (generic vs specialized), the cache
/// simulator, and the accelerator state machines. These measure the
/// reproduction's own performance, complementing the modeled task-clock
/// numbers of the figure benches.
///
//===----------------------------------------------------------------------===//

#include "exec/Reference.h"
#include "runtime/DmaRuntime.h"
#include "sim/SoC.h"

#include <benchmark/benchmark.h>

using namespace axi4mlir;
using namespace axi4mlir::sim;
using runtime::MemRefDesc;

namespace {

void BM_CopyToDmaGeneric(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/false);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CopyToDmaSpecialized(benchmark::State &State) {
  auto Soc = makeMatMulSoC(MatMulAccelerator::Version::V3, 16);
  runtime::DmaRuntime Runtime(*Soc, /*SpecializeCopies=*/true);
  accel::DmaInitConfig Config;
  Config.InputBufferSize = 1 << 20;
  Config.OutputBufferSize = 1 << 20;
  Runtime.dmaInit(Config);
  MemRefDesc Full = MemRefDesc::alloc({256, 256});
  MemRefDesc Tile = Full.subview({8, 8}, {State.range(0), State.range(0)});
  for (auto _ : State)
    benchmark::DoNotOptimize(Runtime.copyToDmaRegion(Tile, 0));
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0));
}

void BM_CacheSimAccess(benchmark::State &State) {
  SoCParams Params;
  CacheSim Cache(Params);
  uint64_t Address = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.access(Address, 4));
    Address += 64;
  }
}

void BM_MatMulAcceleratorTile(benchmark::State &State) {
  SoCParams Params;
  MatMulAccelerator Accel(MatMulAccelerator::Version::V1, State.range(0),
                          ElemKind::I32, Params);
  int64_t Words = 2 * State.range(0) * State.range(0);
  for (auto _ : State) {
    Accel.consumeWord(opcodes::MM_SASBCCRC);
    for (int64_t I = 0; I < Words; ++I)
      Accel.consumeWord(1);
    benchmark::DoNotOptimize(
        Accel.drainOutput(State.range(0) * State.range(0)));
    Accel.takeComputeCycles();
  }
  State.SetItemsProcessed(State.iterations() * State.range(0) *
                          State.range(0) * State.range(0));
}

} // namespace

BENCHMARK(BM_CopyToDmaGeneric)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CopyToDmaSpecialized)->Arg(8)->Arg(16)->Arg(64);
BENCHMARK(BM_CacheSimAccess);
BENCHMARK(BM_MatMulAcceleratorTile)->Arg(4)->Arg(8)->Arg(16);

BENCHMARK_MAIN();
