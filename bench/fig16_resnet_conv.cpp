//===- fig16_resnet_conv.cpp - Paper Fig. 16: ResNet18 conv layers --------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates paper Fig. 16: AXI4MLIR vs layer-specific manual driver
/// code for the ResNet18 convolution layers, reporting branch
/// instructions, cache references and task-clock normalized to the manual
/// implementation. Input sizes are adjusted by at most one pixel where the
/// unpadded convolution would not divide evenly (our substrate implements
/// valid convolutions without padding; see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;

namespace {

struct Layer {
  const char *Label; // iHW_iC_fHW_oC_stride (paper x-axis)
  int64_t InHW, InChannels, FilterHW, OutChannels, Stride;
};

sim::PerfReport mustRunConv(exec::RunResult (*Fn)(const ConvRunConfig &),
                            const ConvRunConfig &Config, const char *What) {
  exec::RunResult Result = Fn(Config);
  if (!Result.Ok) {
    std::fprintf(stderr, "FATAL: %s failed: %s\n", What,
                 Result.Error.c_str());
    std::abort();
  }
  return Result.Report;
}

} // namespace

int main() {
  // Paper Fig. 16 layer set: dims [iHW, iC, fHW, oC, stride], with iHW
  // shrunk by <=1 where (iHW - fHW) % stride != 0.
  const Layer Layers[] = {
      {"14_256_1_512_2", 13, 256, 1, 512, 2},
      {"16_256_3_256_1", 16, 256, 3, 256, 1},
      {"16_256_3_512_2", 15, 256, 3, 512, 2},
      {"230_3_7_64_2", 229, 3, 7, 64, 2},
      {"28_128_1_256_2", 27, 128, 1, 256, 2},
      {"30_128_3_128_1", 30, 128, 3, 128, 1},
      {"30_128_3_256_2", 29, 128, 3, 256, 2},
      {"56_64_1_128_2", 55, 64, 1, 128, 2},
      {"58_64_3_128_2", 57, 64, 3, 128, 2},
      {"58_64_3_64_1", 58, 64, 3, 64, 1},
      {"9_512_3_512_1", 9, 512, 3, 512, 1},
  };

  printHeader("Fig. 16: ResNet18 convolution layers, AXI4MLIR vs manual "
              "(normalized to cpp_MANUAL; <1.0 means AXI4MLIR better)");
  std::printf("%-18s %12s %12s %12s\n", "dims", "branch-inst",
              "cache-refs", "task-clock");

  double SpeedupSum = 0, SpeedupMax = 0;
  int Count = 0;
  for (const Layer &L : Layers) {
    ConvRunConfig Config;
    Config.InHW = L.InHW;
    Config.InChannels = L.InChannels;
    Config.FilterHW = L.FilterHW;
    Config.OutChannels = L.OutChannels;
    Config.Stride = L.Stride;
    Config.Validate = false;

    sim::PerfReport Manual = mustRunConv(runConvManual, Config, L.Label);
    sim::PerfReport Generated =
        mustRunConv(runConvAxi4mlir, Config, L.Label);
    double Branch = static_cast<double>(Generated.BranchInstructions) /
                    static_cast<double>(Manual.BranchInstructions);
    double Refs = static_cast<double>(Generated.CacheReferences) /
                  static_cast<double>(Manual.CacheReferences);
    double Clock = Generated.TaskClockMs / Manual.TaskClockMs;
    std::printf("%-18s %12.3f %12.3f %12.3f\n", L.Label, Branch, Refs,
                Clock);
    double Speedup = 1.0 / Clock;
    SpeedupSum += Speedup;
    SpeedupMax = std::max(SpeedupMax, Speedup);
    ++Count;
  }
  std::printf("\nSpeedup over manual: avg %.2fx max %.2fx "
              "(paper: 1.28x avg, 1.54x max; one fHW==1 layer slower)\n",
              SpeedupSum / Count, SpeedupMax);
  return 0;
}
