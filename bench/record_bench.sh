#!/usr/bin/env bash
#===- record_bench.sh - record the runtime_micro wall-clock trajectory ---===//
#
# Part of the AXI4MLIR reproduction. MIT licensed.
#
# Runs build/bench/runtime_micro with --benchmark_format=json and merges the
# result into BENCH_runtime_micro.json at the repo root under a named entry,
# so the file can hold the perf trajectory across PRs (e.g. "baseline" vs
# "optimized"). Usage:
#
#   bench/record_bench.sh [label]       # label defaults to "optimized"
#   BUILD_DIR=build-foo bench/record_bench.sh baseline
#   BENCH_MIN_TIME=0.5 bench/record_bench.sh   # steadier numbers, slower
#
#===----------------------------------------------------------------------===//
set -euo pipefail

LABEL="${1:-optimized}"
BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/$BUILD_DIR/bench/runtime_micro"
OUT="$ROOT/BENCH_runtime_micro.json"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (needs google-benchmark; configure and build first)" >&2
  exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
# google-benchmark >= 1.8 takes a duration suffix, older releases a double.
"$BIN" --benchmark_format=json --benchmark_min_time="${MIN_TIME}s" >"$TMP" 2>/dev/null ||
  "$BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" >"$TMP"

python3 - "$TMP" "$OUT" "$LABEL" <<'PYEOF'
import json, sys

src, dst, label = sys.argv[1], sys.argv[2], sys.argv[3]
with open(src) as f:
    run = json.load(f)
# Drop volatile context fields so diffs track the numbers, not the host.
run.get("context", {}).pop("date", None)
run.get("context", {}).pop("load_avg", None)
try:
    with open(dst) as f:
        trajectory = json.load(f)
except FileNotFoundError:
    trajectory = {}
trajectory[label] = run
with open(dst, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
PYEOF

echo "recorded '$LABEL' into $OUT"
