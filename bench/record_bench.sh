#!/usr/bin/env bash
#===- record_bench.sh - record the runtime_micro wall-clock trajectory ---===//
#
# Part of the AXI4MLIR reproduction. MIT licensed.
#
# Runs build/bench/runtime_micro with --benchmark_format=json and merges the
# result into BENCH_runtime_micro.json at the repo root under a named entry,
# so the file can hold the perf trajectory across PRs (e.g. "baseline" vs
# "optimized"). An optional second argument is a regex passed to
# --benchmark_filter; a filtered run merges per-benchmark into the label's
# existing entry instead of replacing it, so one ablation can be
# re-recorded without re-running the full suite. Usage:
#
#   bench/record_bench.sh [label] [filter-regex]   # label: "optimized"
#   bench/record_bench.sh threaded 'BM_ExecPlanCpu'
#   BUILD_DIR=build-foo bench/record_bench.sh baseline
#   BENCH_MIN_TIME=0.5 bench/record_bench.sh   # steadier numbers, slower
#
#===----------------------------------------------------------------------===//
set -euo pipefail

LABEL="${1:-optimized}"
FILTER="${2:-}"
BUILD_DIR="${BUILD_DIR:-build}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/$BUILD_DIR/bench/runtime_micro"
OUT="$ROOT/BENCH_runtime_micro.json"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (needs google-benchmark; configure and build first)" >&2
  exit 1
fi

TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT
FILTER_ARGS=()
if [ -n "$FILTER" ]; then
  FILTER_ARGS=(--benchmark_filter="$FILTER")
fi
# google-benchmark >= 1.8 takes a duration suffix, older releases a double.
"$BIN" --benchmark_format=json --benchmark_min_time="${MIN_TIME}s" \
  "${FILTER_ARGS[@]}" >"$TMP" 2>/dev/null ||
  "$BIN" --benchmark_format=json --benchmark_min_time="$MIN_TIME" \
    "${FILTER_ARGS[@]}" >"$TMP"

python3 - "$TMP" "$OUT" "$LABEL" "$FILTER" <<'PYEOF'
import json, sys

src, dst, label, filt = sys.argv[1], sys.argv[2], sys.argv[3], sys.argv[4]
with open(src) as f:
    run = json.load(f)
# Drop volatile context fields so diffs track the numbers, not the host.
run.get("context", {}).pop("date", None)
run.get("context", {}).pop("load_avg", None)
try:
    with open(dst) as f:
        trajectory = json.load(f)
except FileNotFoundError:
    trajectory = {}
if filt and label in trajectory:
    # Filtered run: splice the re-recorded benchmarks into the existing
    # entry by name (appending new ones), keeping the rest untouched.
    merged = trajectory[label]
    by_name = {b["name"]: i for i, b in enumerate(merged["benchmarks"])}
    for bench in run["benchmarks"]:
        if bench["name"] in by_name:
            merged["benchmarks"][by_name[bench["name"]]] = bench
        else:
            merged["benchmarks"].append(bench)
else:
    trajectory[label] = run
with open(dst, "w") as f:
    json.dump(trajectory, f, indent=2)
    f.write("\n")
PYEOF

echo "recorded '$LABEL' into $OUT"
