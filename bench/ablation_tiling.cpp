//===- ablation_tiling.cpp - Ablation: CPU tiling & transfer batching -----===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation bench for the design choices DESIGN.md calls out: the
/// CPU-cache tiling level (paper Fig. 4 step 4) and the IR level at which
/// host code executes — accel ops transferring one-by-one vs the batched
/// axirt runtime calls (paper Sec. III-A offset batching).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace axi4mlir;
using namespace axi4mlir::bench;
using namespace axi4mlir::exec;
using V = sim::MatMulAccelerator::Version;

int main() {
  printHeader("Ablation: CPU-cache tiling level (v3_16, As flow)");
  for (int64_t Dims : {128, 256, 512}) {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = Dims;
    Config.Version = V::V3;
    Config.AccelSize = 16;
    Config.Flow = "As";
    Config.Validate = false;

    Config.CpuTiling = true;
    sim::PerfReport Tiled = mustRun(runMatMulAxi4mlir, Config, "tiled");
    Config.CpuTiling = false;
    sim::PerfReport Flat = mustRun(runMatMulAxi4mlir, Config, "flat");
    std::printf("dims %4lld: cpu-tiling ON %9.3f ms (LLC refs %9llu) | "
                "OFF %9.3f ms (LLC refs %9llu)\n",
                static_cast<long long>(Dims), Tiled.TaskClockMs,
                static_cast<unsigned long long>(Tiled.CacheReferences),
                Flat.TaskClockMs,
                static_cast<unsigned long long>(Flat.CacheReferences));
  }

  printHeader("Ablation: partial-tile strategy (pad vs peel, v3_16)");
  // Non-divisible shapes (the tiling-plan layer's pad/peel paths): the
  // acceptance shape, a ResNet-ish projection, and thin- vs thick-fringe
  // extremes around the 16 tile. Tracks the overhead each strategy adds
  // over the nearest divisible problem.
  {
    struct Shape {
      int64_t M, N, K;
      const char *Note;
    };
    const Shape Shapes[] = {
        {100, 36, 52, "acceptance shape"},
        {224, 112, 50, "conv-as-matmul projection"},
        {129, 129, 129, "thin fringe (129 % 16 = 1)"},
        {127, 127, 127, "thick fringe (127 % 16 = 15)"},
    };
    for (const Shape &S : Shapes) {
      MatMulRunConfig Config;
      Config.M = S.M;
      Config.N = S.N;
      Config.K = S.K;
      Config.Version = V::V3;
      Config.AccelSize = 16;
      Config.Flow = "As";
      Config.Validate = false;

      Config.Remainder = transforms::RemainderMode::Pad;
      sim::PerfReport Pad = mustRun(runMatMulAxi4mlir, Config, "pad");
      Config.Remainder = transforms::RemainderMode::Peel;
      sim::PerfReport Peel = mustRun(runMatMulAxi4mlir, Config, "peel");
      std::printf("%4lldx%-4lldx%-4lld: pad %9.3f ms (%6llu transfers) | "
                  "peel %9.3f ms (%6llu transfers)  [%s]\n",
                  static_cast<long long>(S.M), static_cast<long long>(S.N),
                  static_cast<long long>(S.K), Pad.TaskClockMs,
                  static_cast<unsigned long long>(Pad.DmaTransfers),
                  Peel.TaskClockMs,
                  static_cast<unsigned long long>(Peel.DmaTransfers),
                  S.Note);
    }
  }

  printHeader("Ablation: transfer batching (one dma_start_send per token "
              "vs per accel op)");
  // The batched path is the default pipeline; the unbatched path is the
  // accel-level interpretation where every transaction ships alone. We
  // approximate the unbatched cost from DMA transfer counts: each extra
  // transfer costs start+wait host cycles.
  for (int64_t Dims : {64, 128}) {
    MatMulRunConfig Config;
    Config.M = Config.N = Config.K = Dims;
    Config.Version = V::V3;
    Config.AccelSize = 16;
    Config.Flow = "Ns";
    Config.Validate = false;
    sim::PerfReport Batched = mustRun(runMatMulAxi4mlir, Config, "batched");
    // Unbatched: every literal/data copy is its own transfer; with the
    // v3 Ns token structure that is 5 transfers in place of 2 per tile.
    double ExtraTransfers =
        static_cast<double>(Batched.DmaTransfers) * 1.5;
    double ExtraMs = ExtraTransfers *
                     static_cast<double>(Config.Params.DmaStartHostCycles +
                                         Config.Params.DmaWaitHostCycles) /
                     Config.Params.HostClockHz * 1e3;
    std::printf("dims %4lld: batched %9.3f ms (%llu transfers) | "
                "unbatched est. +%.3f ms\n",
                static_cast<long long>(Dims), Batched.TaskClockMs,
                static_cast<unsigned long long>(Batched.DmaTransfers),
                ExtraMs);
  }
  return 0;
}
