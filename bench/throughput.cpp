//===- throughput.cpp - Serve-layer throughput under faults ---------------===//
//
// Part of the AXI4MLIR reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the serve layer's modeled throughput and latency percentiles
/// for a mixed matmul+conv job stream, with and without a browned-out
/// pool instance. All latency is modeled time (PerfReport task-clock), so
/// the numbers are bit-stable across hosts and can be committed as a
/// trajectory (BENCH_throughput.json via --json FILE).
///
/// The claim pinned here: a faulty instance degrades throughput
/// proportionally — traffic fails over and the fleet keeps completing
/// jobs — instead of stalling the whole pool.
///
//===----------------------------------------------------------------------===//

#include "exec/AccelConfigs.h"
#include "serve/Server.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace axi4mlir;
using namespace axi4mlir::serve;

namespace {

struct ScenarioResult {
  std::string Name;
  unsigned Jobs = 0;
  uint64_t Completed = 0;
  uint64_t Shed = 0;
  uint64_t Retries = 0;
  uint64_t Failovers = 0;
  uint64_t CpuFallbacks = 0;
  uint64_t BreakerTrips = 0;
  double JobsPerSec = 0;
  double P50Ms = 0;
  double P99Ms = 0;
};

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Index = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Index, Sorted.size() - 1)];
}

std::vector<JobRequest> makeWorkload(unsigned Jobs) {
  std::vector<JobRequest> Requests;
  static const int64_t Sizes[] = {32, 48, 64};
  for (unsigned I = 0; I < Jobs; ++I) {
    JobRequest Request;
    Request.Seed = 7 + I;
    if (I % 3 == 2) {
      Request.Kind = JobKind::Conv2D;
      Request.InChannels = 8;
      Request.InHW = 10 + 4 * int64_t(I % 2);
      Request.OutChannels = 8;
      Request.FilterHW = 3;
      Request.Stride = 1;
    } else {
      Request.Kind = JobKind::MatMul;
      Request.M = Sizes[I % 3];
      Request.N = Sizes[(I / 3) % 3];
      Request.K = Sizes[(I / 9) % 3];
    }
    Requests.push_back(Request);
  }
  return Requests;
}

ScenarioResult runScenario(const std::string &Name, unsigned Jobs,
                           bool WithFaults) {
  std::vector<parser::AcceleratorDesc> Accels = {
      exec::parseSingleAccelerator(exec::makeMatMulConfigJson(
          sim::MatMulAccelerator::Version::V3, 4, "As")),
      exec::parseSingleAccelerator(exec::makeMatMulConfigJson(
          sim::MatMulAccelerator::Version::V3, 16, "As")),
      exec::parseSingleAccelerator(exec::makeConvConfigJson())};
  ServerOptions Options;
  Options.Instances = 3;
  Options.QueueDepth = 256;
  Options.Threads = 0; // deterministic scheduler: modeled time only
  Options.BreakerThreshold = 2;
  Options.BreakerCooldown = 3;
  Options.MaxAttempts = 3;

  std::vector<JobRequest> Workload = makeWorkload(Jobs);

  Server S(Accels, Options);
  if (WithFaults) {
    // Brown out whichever instance routing prefers for the stream's
    // first job, so faults land in the hot path.
    unsigned FaultyIndex = 0;
    {
      Server Probe(Accels, Options);
      Probe.submit(Workload.front());
      Probe.drain();
      std::vector<JobOutcome> Out = Probe.takeOutcomes();
      if (!Out.empty() && Out[0].Instance >= 0)
        FaultyIndex = static_cast<unsigned>(Out[0].Instance);
    }
    InstanceFaults Faults;
    sim::FaultEvent Event;
    Event.Kind = sim::FaultKind::TransientError;
    Event.At = 1;
    Faults.Plan.Events.push_back(Event);
    Faults.Plan.Recovery.Enabled = false;
    Faults.JobsAffected = Jobs / 4; // brown-out for a quarter of the run
    S.setInstanceFaults(FaultyIndex, Faults);
  }

  for (const JobRequest &Request : Workload)
    S.submit(Request);
  S.drain();
  S.shutdown();

  ScenarioResult Result;
  Result.Name = Name;
  Result.Jobs = Jobs;
  double TotalModeledMs = 0;
  std::vector<double> Latencies;
  for (const JobOutcome &Out : S.takeOutcomes()) {
    TotalModeledMs += Out.ModeledMs;
    if (Out.Status == JobStatus::Completed)
      Latencies.push_back(Out.LatencyMs);
    else
      ++Result.Shed;
    if (Out.Status == JobStatus::Failed) {
      std::fprintf(stderr, "FATAL: job %llu failed: %s\n",
                   static_cast<unsigned long long>(Out.Id),
                   Out.Error.c_str());
      std::abort();
    }
  }
  ServerStats Stats = S.stats();
  Result.Completed = Stats.Completed;
  Result.Retries = Stats.Retries;
  Result.Failovers = Stats.Failovers;
  Result.CpuFallbacks = Stats.CpuFallbacks;
  Result.BreakerTrips = Stats.BreakerTrips;
  std::sort(Latencies.begin(), Latencies.end());
  Result.JobsPerSec = TotalModeledMs > 0
                          ? double(Stats.Completed) * 1e3 / TotalModeledMs
                          : 0;
  Result.P50Ms = percentile(Latencies, 0.50);
  Result.P99Ms = percentile(Latencies, 0.99);
  return Result;
}

void printResult(const ScenarioResult &R) {
  std::printf("%-16s %4u jobs | completed %4llu | shed %3llu | "
              "retries %3llu | failovers %3llu | trips %2llu | "
              "%8.2f jobs/s | p50 %8.3f ms | p99 %8.3f ms\n",
              R.Name.c_str(), R.Jobs,
              static_cast<unsigned long long>(R.Completed),
              static_cast<unsigned long long>(R.Shed),
              static_cast<unsigned long long>(R.Retries),
              static_cast<unsigned long long>(R.Failovers),
              static_cast<unsigned long long>(R.BreakerTrips), R.JobsPerSec,
              R.P50Ms, R.P99Ms);
}

void writeJson(const char *Path, const std::vector<ScenarioResult> &Results) {
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path);
    std::exit(1);
  }
  std::fprintf(Out, "{\n  \"bench\": \"serve_throughput\",\n"
                    "  \"scenarios\": [\n");
  for (size_t I = 0; I < Results.size(); ++I) {
    const ScenarioResult &R = Results[I];
    std::fprintf(
        Out,
        "    { \"name\": \"%s\", \"jobs\": %u, \"completed\": %llu,\n"
        "      \"shed\": %llu, \"retries\": %llu, \"failovers\": %llu,\n"
        "      \"cpu_fallbacks\": %llu, \"breaker_trips\": %llu,\n"
        "      \"jobs_per_sec\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f }%s\n",
        R.Name.c_str(), R.Jobs, static_cast<unsigned long long>(R.Completed),
        static_cast<unsigned long long>(R.Shed),
        static_cast<unsigned long long>(R.Retries),
        static_cast<unsigned long long>(R.Failovers),
        static_cast<unsigned long long>(R.CpuFallbacks),
        static_cast<unsigned long long>(R.BreakerTrips), R.JobsPerSec,
        R.P50Ms, R.P99Ms, I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(Out, "  ]\n}\n");
  std::fclose(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = nullptr;
  unsigned Jobs = 48;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--json") == 0 && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (std::strcmp(Argv[I], "--jobs") == 0 && I + 1 < Argc)
      Jobs = static_cast<unsigned>(std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: throughput [--jobs N] [--json FILE]\n");
      return 2;
    }
  }

  std::printf("\n=== Serve-layer modeled throughput (mixed matmul+conv, "
              "3-instance pool) ===\n");
  std::vector<ScenarioResult> Results;
  Results.push_back(runScenario("healthy", Jobs, /*WithFaults=*/false));
  Results.push_back(runScenario("faulty-instance", Jobs,
                                /*WithFaults=*/true));
  for (const ScenarioResult &R : Results)
    printResult(R);

  const ScenarioResult &Healthy = Results[0];
  const ScenarioResult &Faulty = Results[1];
  if (Faulty.Completed != Faulty.Jobs) {
    std::fprintf(stderr, "FATAL: faulty scenario shed %llu jobs (pool "
                         "stalled instead of failing over)\n",
                 static_cast<unsigned long long>(Faulty.Shed));
    return 1;
  }
  std::printf("\nExpected: the faulty pool completes every job (failover, "
              "no fleet stall) at %.1f%% of healthy throughput.\n",
              Healthy.JobsPerSec > 0
                  ? 100.0 * Faulty.JobsPerSec / Healthy.JobsPerSec
                  : 0);

  if (JsonPath)
    writeJson(JsonPath, Results);
  return 0;
}
